(** E-matching: finding all substitutions under which a pattern matches
    an e-class, and instantiating right-hand sides. *)

type mode = Insert | Check_only
(** [Check_only] implements the constrained-lemma optimization (paper
    section 4.3.2): instantiation succeeds only when every operator node
    of the right-hand side already exists in the e-graph. *)

val match_class : Egraph.t -> Pattern.t -> Id.t -> Subst.t list
(** All substitutions matching the pattern at the given class. *)

val match_all : Egraph.t -> Pattern.t -> (Id.t * Subst.t) list
(** Matches across every class of the e-graph. *)

val instantiate :
  mode:mode -> Egraph.t -> Subst.t -> Pattern.t -> Id.t option
(** Build the pattern under the substitution. [None] if the pattern
    references an unbound variable/operator or, in [Check_only] mode,
    when a node does not already exist. *)
