(* Adding operators and lemmas (the workflow of the paper's section 6.5).

   A model uses a fused kernel — in both the sequential specification
   and the distributed implementation, per the paper's same-optimizations
   assumption — that the base ATen corpus knows nothing about. Out of
   the box the checker cannot push the sharding through the opaque
   kernel and fails. The user writes a one-lemma bridge giving the
   kernel its mathematical meaning (two lines per direction, matching
   the paper's observation that universal lemmas take one or two lines
   of code), appends it to the rule set, and the check passes: the
   bridge lets the whole existing corpus apply to the new operator.

   Run with: dune exec examples/custom_lemma.exe *)

open Entangle_symbolic
open Entangle_ir
open Entangle_dist
open Entangle_egraph
module B = Graph.Builder

let sd = Symdim.of_int

let () =
  (* Sequential specification, using the fused kernel. *)
  let bs = B.create "swiglu-seq" in
  let g = B.input bs "g" [ sd 4; sd 8 ] in
  let u = B.input bs "u" [ sd 4; sd 8 ] in
  let out = B.add bs ~name:"out" Op.Swiglu_fused [ g; u ] in
  B.output bs out;
  let gs = B.finish bs in
  (* Distributed implementation: sequence-sharded fused kernel. *)
  let ctx = Lower.create ~name:"swiglu-dist" ~degree:2 () in
  let gsh = Lower.shard_input ctx g ~dim:0 in
  let ush = Lower.shard_input ctx u ~dim:0 in
  let outs =
    List.map2 (fun g_r u_r -> Lower.add ctx Op.Swiglu_fused [ g_r; u_r ]) gsh ush
  in
  Lower.outputs ctx outs;
  let gd, input_relation = Lower.finish ctx in

  (* 1. With only the base ATen corpus (no vLLM lemmas), the fused
        kernel is opaque and the check fails at the silu operator. *)
  let base_rules =
    Entangle_lemmas.Registry.rules_for_model Entangle_lemmas.Registry.Gpt
  in
  (match Entangle.Refine.check ~rules:base_rules ~gs ~gd ~input_relation () with
  | Ok _ -> Fmt.pr "unexpected success without the custom lemma@."
  | Error f ->
      Fmt.pr "Without a lemma for the fused kernel:@.  FAILED at %a@.@."
        Node.pp f.operator);

  (* 2. The user-provided lemma: swiglu_fused(g, u) = mul(silu(g), u). *)
  let v = Pattern.v and p = Pattern.p in
  let custom =
    Entangle_lemmas.Lemma.make ~klass:Entangle_lemmas.Lemma.Vllm
      "my-swiglu-bridge"
      [
        Rule.make "my-swiglu-bridge"
          (p Op.Swiglu_fused [ v "g"; v "u" ])
          (p Op.Mul [ p Op.Silu [ v "g" ]; v "u" ]);
        Rule.make "my-swiglu-bridge"
          (p Op.Mul [ p Op.Silu [ v "g" ]; v "u" ])
          (p Op.Swiglu_fused [ v "g"; v "u" ]);
      ]
  in
  Fmt.pr "User lemma: %a@.@." Entangle_lemmas.Lemma.pp custom;
  let rules = base_rules @ Entangle_lemmas.Lemma.rules [ custom ] in
  match Entangle.Refine.check ~rules ~gs ~gd ~input_relation () with
  | Ok success ->
      Fmt.pr "With the lemma:@.%a@." (Entangle.Report.pp_success gs) success
  | Error f ->
      Fmt.pr "still failing: %s@." (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict);
      exit 1
