(* Tests for the certificate cache (lib/cache): fingerprint canonicity
   (stable across rebuilds, invariant under node-id renaming and
   independent-node reordering, distinct across the bug mutants), the
   on-disk store's durability contract (round-trip, version
   invalidation, corruption quarantine), and the end-to-end incremental
   re-checking guarantees — a warm re-check does zero saturation work
   and verdicts never depend on the cache. *)

open Entangle_models
module Trace = Entangle_trace
module Fp = Entangle_cache.Fingerprint
module Store = Entangle_cache.Store
module Cache = Entangle_cache.Cache

open Entangle_ir

let check = Alcotest.check

(* --- scratch stores ----------------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-test-cache.%d.%d" (Unix.getpid ()) !temp_counter)
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_temp_cache f =
  with_temp_dir (fun dir ->
      match Cache.create ~dir () with
      | Error e -> Alcotest.failf "cannot open temp cache: %s" e
      | Ok cache -> f cache)

(* --- fingerprint helpers ------------------------------------------------ *)

(* Rebuild a graph from scratch with entirely fresh tensor and node ids
   but identical names, shapes, dtypes and structure. Fingerprints must
   not see the difference — ids are process-global counters and two
   builds of the same model never share them. *)
let clone_graph g =
  let tbl = Hashtbl.create 16 in
  let fresh t =
    match Hashtbl.find_opt tbl (Tensor.id t :> int) with
    | Some t' -> t'
    | None ->
        let t' =
          Tensor.create ~dtype:(Tensor.dtype t) ~name:(Tensor.name t)
            (Tensor.shape t)
        in
        Hashtbl.add tbl (Tensor.id t :> int) t';
        t'
  in
  let inputs = List.map fresh (Graph.inputs g) in
  let nodes =
    List.map
      (fun n ->
        {
          Node.id = Node.id n + 10_000_000;
          op = Node.op n;
          inputs = List.map fresh (Node.inputs n);
          output = fresh (Node.output n);
        })
      (Graph.nodes g)
  in
  let outputs = List.map fresh (Graph.outputs g) in
  Graph.unsafe_make
    ~constraints:(Graph.constraints g)
    ~name:(Graph.name g) ~inputs ~outputs nodes

let graph_hex g = Fp.to_hex (Fp.graph g)

(* A small DAG driven by a list of choice ints: each step applies a
   binary op to two previously-built tensors. Deterministic in the
   choices, so QCheck shrinking stays meaningful. *)
let build_fuzz_graph choices =
  let b = Graph.Builder.create "fuzz" in
  let x = Graph.Builder.input b "x" (Shape.of_ints [ 4; 4 ]) in
  let y = Graph.Builder.input b "y" (Shape.of_ints [ 4; 4 ]) in
  let tensors = ref [| x; y |] in
  List.iteri
    (fun i k ->
      let arr = !tensors in
      let n = Array.length arr in
      let a = arr.(abs k mod n) and c = arr.((abs k / 7) mod n) in
      let op =
        match abs k mod 3 with 0 -> Op.Add | 1 -> Op.Mul | _ -> Op.Maximum
      in
      let t = Graph.Builder.add b ~name:(Fmt.str "t%d" i) op [ a; c ] in
      tensors := Array.append arr [| t |])
    choices;
  let arr = !tensors in
  Graph.Builder.output b arr.(Array.length arr - 1);
  Graph.Builder.finish b

let fingerprint_tests =
  [
    Alcotest.test_case "sha256 matches the FIPS 180-4 vectors" `Quick
      (fun () ->
        (* The digest backing every fingerprint, cache key, section
           digest and bundle id is home-grown (the toolchain only ships
           MD5), so pin it to the published test vectors. *)
        let hex = Entangle_fingerprint.Sha256.hex in
        check Alcotest.string "empty"
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (hex "");
        check Alcotest.string "abc"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (hex "abc");
        check Alcotest.string "two blocks"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        (* exactly one byte short of the padding boundary, and exactly
           on it: the two framing edge cases *)
        check Alcotest.string "55 bytes"
          "85528b5baff5639cb8e7daca79d085ac29ac0978e873ed7527158616b2b6c379"
          (hex (String.make 55 'q'));
        check Alcotest.string "64 bytes"
          "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
          (hex (String.make 64 'a')));
    Alcotest.test_case "stable across independent builds" `Quick (fun () ->
        let a = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
        let b = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
        check Alcotest.string "gs fingerprint" (graph_hex a.Instance.gs)
          (graph_hex b.Instance.gs);
        check Alcotest.string "gd fingerprint" (graph_hex a.Instance.gd)
          (graph_hex b.Instance.gd));
    Alcotest.test_case "invariant under independent-node reorder" `Quick
      (fun () ->
        (* A diamond: mul and max are independent, so both orders are
           topological and must fingerprint identically. *)
        let x = Tensor.create ~name:"x" (Shape.of_ints [ 2; 2 ]) in
        let m = Tensor.create ~name:"m" (Shape.of_ints [ 2; 2 ]) in
        let n = Tensor.create ~name:"n" (Shape.of_ints [ 2; 2 ]) in
        let z = Tensor.create ~name:"z" (Shape.of_ints [ 2; 2 ]) in
        let mul = { Node.id = -1; op = Op.Mul; inputs = [ x; x ]; output = m } in
        let max_ =
          { Node.id = -2; op = Op.Maximum; inputs = [ x; x ]; output = n }
        in
        let add = { Node.id = -3; op = Op.Add; inputs = [ m; n ]; output = z } in
        let g order =
          Graph.unsafe_make ~name:"diamond" ~inputs:[ x ] ~outputs:[ z ]
            (order @ [ add ])
        in
        check Alcotest.string "reorder" (graph_hex (g [ mul; max_ ]))
          (graph_hex (g [ max_; mul ])));
    Alcotest.test_case "renaming a tensor changes the fingerprint" `Quick
      (fun () ->
        let g name =
          let b = Graph.Builder.create "g" in
          let x = Graph.Builder.input b "x" (Shape.of_ints [ 2 ]) in
          let t = Graph.Builder.add b ~name Op.Relu [ x ] in
          Graph.Builder.output b t;
          Graph.Builder.finish b
        in
        if String.equal (graph_hex (g "a")) (graph_hex (g "b")) then
          Alcotest.fail "rename did not change the fingerprint");
    Alcotest.test_case "distinct across the bug-zoo mutants" `Quick (fun () ->
        (* Every buggy distributed graph must key differently from every
           other and from the fixed pad/slice implementation; colliding
           keys would let one bug's verdict answer for another. *)
        let fps =
          ("pad_slice_fixed",
           graph_hex (Bugs.pad_slice_model ~buggy:false).Instance.gd)
          :: List.map
               (fun (c : Bugs.case) ->
                 (Fmt.str "bug-%d" c.id, graph_hex c.instance.Instance.gd))
               (Bugs.all ())
        in
        List.iteri
          (fun i (ni, fi) ->
            List.iteri
              (fun j (nj, fj) ->
                if i < j && String.equal fi fj then
                  Alcotest.failf "fingerprint collision: %s = %s" ni nj)
              fps)
          fps);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50
         ~name:"fingerprints invariant under fresh tensor/node ids"
         QCheck.(list_of_size (QCheck.Gen.int_range 1 10) small_int)
         (fun choices ->
           let g = build_fuzz_graph choices in
           let g' = clone_graph g in
           if not (String.equal (graph_hex g) (graph_hex g')) then
             QCheck.Test.fail_reportf "clone changed whole-graph fingerprint";
           let env = Fp.graph_env g and env' = Fp.graph_env g' in
           List.for_all2
             (fun n n' ->
               Fp.equal (Fp.node env n) (Fp.node env' n')
               && Fp.equal
                    (Fp.tensor env (Node.output n))
                    (Fp.tensor env' (Node.output n')))
             (Graph.nodes g) (Graph.nodes g')));
  ]

(* --- store durability --------------------------------------------------- *)

let open_store dir =
  match Store.open_ ~dir () with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_: %s" e

let entry_file dir key =
  (* objects/<2-hex-shard>/<key>, as documented in store.mli. *)
  Filename.concat
    (Filename.concat (Filename.concat dir "objects") (String.sub key 0 2))
    key

let store_tests =
  [
    Alcotest.test_case "round-trip across re-open" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let key = String.make 32 'a' in
            (match Store.put s ~key "payload\nwith lines" with
            | Ok () -> ()
            | Error e -> Alcotest.failf "put: %s" e);
            check Alcotest.(option string) "same handle"
              (Some "payload\nwith lines") (Store.get s ~key);
            let s2 = open_store dir in
            check Alcotest.(option string) "re-opened handle"
              (Some "payload\nwith lines") (Store.get s2 ~key);
            check Alcotest.(option string) "absent key" None
              (Store.get s2 ~key:(String.make 32 'b'));
            check Alcotest.int "one entry" 1 (Store.stats s2).Store.entries));
    Alcotest.test_case "version mismatch invalidates silently" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let key = String.make 32 'c' in
            (match Store.put s ~key "old payload" with
            | Ok () -> ()
            | Error e -> Alcotest.failf "put: %s" e);
            (* Rewrite the entry under a future format version. *)
            let path = entry_file dir key in
            let oc = open_out path in
            output_string oc ("entangle-cache/999\n" ^ key ^ "\npayload");
            close_out oc;
            check Alcotest.(option string) "stale entry is a miss" None
              (Store.get s ~key);
            check Alcotest.bool "stale file removed" false (Sys.file_exists path);
            check Alcotest.int "nothing quarantined" 0
              (Store.stats s).Store.quarantined));
    Alcotest.test_case "corrupt entry is quarantined" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let key = String.make 32 'd' in
            (match Store.put s ~key "good payload" with
            | Ok () -> ()
            | Error e -> Alcotest.failf "put: %s" e);
            let path = entry_file dir key in
            let oc = open_out path in
            output_string oc "not a cache entry at all";
            close_out oc;
            check Alcotest.(option string) "corrupt entry is a miss" None
              (Store.get s ~key);
            check Alcotest.bool "damaged file moved out" false
              (Sys.file_exists path);
            check Alcotest.int "quarantined" 1 (Store.stats s).Store.quarantined;
            (* The store keeps working after quarantining damage. *)
            let key2 = String.make 32 'e' in
            (match Store.put s ~key:key2 "second" with
            | Ok () -> ()
            | Error e -> Alcotest.failf "put after quarantine: %s" e);
            check Alcotest.(option string) "store still usable" (Some "second")
              (Store.get s ~key:key2)));
    Alcotest.test_case "clear removes every entry" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            List.iter
              (fun c ->
                match Store.put s ~key:(String.make 32 c) "x" with
                | Ok () -> ()
                | Error e -> Alcotest.failf "put: %s" e)
              [ '0'; '1'; '2' ];
            check Alcotest.int "cleared" 3 (Store.clear s);
            check Alcotest.int "empty" 0 (Store.stats s).Store.entries));
  ]

(* --- incremental re-checking ------------------------------------------- *)

let check_with ?cache ?(collect = false) inst =
  let collector = if collect then Some (Trace.Collect.create ()) else None in
  let config =
    Entangle.Config.default
    |> Entangle.Config.with_cache cache
    |> Entangle.Config.with_trace
         (match collector with
         | Some c -> Trace.Collect.sink c
         | None -> Trace.Sink.null)
  in
  let result = Instance.check ~config inst in
  let events =
    match collector with Some c -> Trace.Collect.events c | None -> []
  in
  (result, events)

let result_stats = function
  | Ok (s : Entangle.Refine.success) -> s.stats
  | Error (f : Entangle.Refine.failure) -> f.stats

(* The comparison the zoo/bugs agreement tests use: verdict class plus
   the localized operator — everything a user acts on. *)
let verdict_summary = function
  | Ok (s : Entangle.Refine.success) ->
      Fmt.str "refines: %a" Entangle.Relation.pp s.output_relation
  | Error (f : Entangle.Refine.failure) ->
      Fmt.str "FAILED at %s: %s"
        (Op.name (Node.op f.operator))
        (match f.verdict with
        | Entangle.Refine.Unmapped _ -> "unmapped"
        | Entangle.Refine.Inconclusive _ -> "inconclusive"
        | Entangle.Refine.Internal _ -> "internal")

let recheck_tests =
  [
    Alcotest.test_case "warm GPT re-check does zero saturation work" `Quick
      (fun () ->
        with_temp_cache (fun cache ->
            let build () = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
            let cold, _ = check_with ~cache (build ()) in
            let cs = result_stats cold in
            check Alcotest.int "cold run misses every operator"
              cs.Entangle.Refine.operators_processed
              cs.Entangle.Refine.cache_misses;
            let warm, events = check_with ~cache ~collect:true (build ()) in
            let ws = result_stats warm in
            (* The acceptance bar: asserted on the trace event stream,
               not just the derived stats — a warm run must emit no
               saturation activity at all. *)
            List.iter
              (fun (ev : Trace.Event.t) ->
                if
                  List.mem ev.Trace.Event.cat
                    [ "iteration"; "rule"; "egraph" ]
                then
                  Alcotest.failf "warm run emitted %s event %s"
                    ev.Trace.Event.cat ev.Trace.Event.name)
              events;
            check Alcotest.int "zero saturation iterations" 0
              ws.Entangle.Refine.saturation_iterations;
            check Alcotest.int "every operator a hit"
              ws.Entangle.Refine.operators_processed
              ws.Entangle.Refine.cache_hits;
            check Alcotest.int "no replay failures" 0
              ws.Entangle.Refine.cache_replays_failed;
            check Alcotest.string "same verdict and relation"
              (verdict_summary cold) (verdict_summary warm);
            match warm with
            | Error _ -> Alcotest.fail "warm GPT check failed"
            | Ok s ->
                check Alcotest.int "provenance covers every operator"
                  s.Entangle.Refine.stats.Entangle.Refine.operators_processed
                  (List.length s.Entangle.Refine.cache_provenance)));
    Alcotest.test_case "cached and uncached verdicts agree across the zoo"
      `Slow (fun () ->
        with_temp_cache (fun cache ->
            List.iter
              (fun name ->
                let inst () = Option.get (Zoo.by_name name) in
                let uncached, _ = check_with (inst ()) in
                let cold, _ = check_with ~cache (inst ()) in
                let warm, _ = check_with ~cache (inst ()) in
                check Alcotest.string
                  (Fmt.str "%s: cold agrees with uncached" name)
                  (verdict_summary uncached) (verdict_summary cold);
                check Alcotest.string
                  (Fmt.str "%s: warm agrees with uncached" name)
                  (verdict_summary uncached) (verdict_summary warm))
              Zoo.names));
    Alcotest.test_case "cached and uncached outcomes agree on every bug"
      `Slow (fun () ->
        with_temp_cache (fun cache ->
            let outcome o =
              match o with Bugs.Detected _ -> "detected" | Bugs.Missed -> "missed"
            in
            let cached_config =
              Entangle.Config.default |> Entangle.Config.with_cache (Some cache)
            in
            List.iter
              (fun (c : Bugs.case) ->
                let uncached = outcome (Bugs.run c) in
                let cold = outcome (Bugs.run ~config:cached_config c) in
                let warm = outcome (Bugs.run ~config:cached_config c) in
                check Alcotest.string (Fmt.str "bug %d cold" c.id) uncached cold;
                check Alcotest.string (Fmt.str "bug %d warm" c.id) uncached warm)
              (Bugs.all ())));
    Alcotest.test_case "negative result is cached and replayed" `Quick
      (fun () ->
        (* Bug 3's Unmapped verdict saturates: provable absence must be
           served from the cache on the second run. *)
        with_temp_cache (fun cache ->
            let inst () = (Bugs.case 3).Bugs.instance in
            let cold, _ = check_with ~cache (inst ()) in
            let warm, _ = check_with ~cache (inst ()) in
            let ws = result_stats warm in
            check Alcotest.string "verdict stable" (verdict_summary cold)
              (verdict_summary warm);
            check Alcotest.bool "warm negative lookup hits" true
              (ws.Entangle.Refine.cache_hits > 0);
            check Alcotest.int "no saturation on warm negative" 0
              ws.Entangle.Refine.saturation_iterations));
    Alcotest.test_case "store damage degrades to a re-search" `Quick
      (fun () ->
        with_temp_cache (fun cache ->
            let inst () = Regression.build ~microbatches:2 () in
            let cold, _ = check_with ~cache (inst ()) in
            (* Garble every stored payload (keep valid headers/keys so
               the store layer accepts them and the failure lands in
               certificate replay). *)
            let store = open_store (Cache.dir cache) in
            let objects = Filename.concat (Cache.dir cache) "objects" in
            Array.iter
              (fun shard ->
                let sdir = Filename.concat objects shard in
                Array.iter
                  (fun key ->
                    let oc = open_out (Filename.concat sdir key) in
                    output_string oc
                      (Store.version ^ "\n" ^ key ^ "\n(entry (garbage))");
                    close_out oc)
                  (Sys.readdir sdir))
              (Sys.readdir objects);
            ignore store;
            let damaged, _ = check_with ~cache (inst ()) in
            let ds = result_stats damaged in
            check Alcotest.string "verdict survives damage"
              (verdict_summary cold) (verdict_summary damaged);
            check Alcotest.bool "replay failures recorded" true
              (ds.Entangle.Refine.cache_replays_failed > 0);
            check Alcotest.int "no hits from damaged store" 0
              ds.Entangle.Refine.cache_hits;
            (* The re-search repopulates: a further run hits again. *)
            let healed, _ = check_with ~cache (inst ()) in
            let hs = result_stats healed in
            check Alcotest.int "repopulated"
              hs.Entangle.Refine.operators_processed
              hs.Entangle.Refine.cache_hits));
  ]

(* --- retention: budgets, eviction, expiry -------------------------------- *)

let put_exn s ~key payload =
  match Store.put s ~key payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "put: %s" e

let backdate dir key seconds_ago =
  let t = Unix.gettimeofday () -. seconds_ago in
  Unix.utimes (entry_file dir key) t t

let open_budgeted dir budget =
  match Store.open_ ~dir ~budget () with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_: %s" e

let retention_tests =
  [
    Alcotest.test_case "entry exactly at the byte budget is kept" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s0 = open_store dir in
            let key = String.make 32 'a' in
            put_exn s0 ~key "fits exactly";
            let size = (Unix.stat (entry_file dir key)).Unix.st_size in
            (* The ceiling is inclusive: a store holding exactly
               [max_bytes] evicts nothing. *)
            let s =
              open_budgeted dir
                { Store.max_bytes = Some size; max_age_s = None }
            in
            let r = Store.gc s in
            check Alcotest.int "no eviction at the ceiling" 0 r.Store.evicted;
            check Alcotest.int "entry kept" 1 r.Store.remaining_entries;
            check
              Alcotest.(option string)
              "still readable" (Some "fits exactly") (Store.get s ~key);
            (* Any growth past the ceiling sweeps the oldest out. *)
            backdate dir key 100.;
            put_exn s ~key:(String.make 32 'b') "fits";
            let st = Store.stats s in
            check Alcotest.int "sweep kept the newer entry" 1 st.Store.entries;
            check Alcotest.bool "back within budget" true
              (st.Store.bytes <= size);
            check
              Alcotest.(option string)
              "older entry evicted" None (Store.get s ~key)));
    Alcotest.test_case "age bound beats a racing hit" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s =
              open_budgeted dir
                { Store.max_bytes = None; max_age_s = Some 60. }
            in
            let old_key = String.make 32 'a'
            and fresh_key = String.make 32 'b' in
            put_exn s ~key:old_key "stale";
            put_exn s ~key:fresh_key "fresh";
            backdate dir old_key 3600.;
            (* The file is still on disk when the lookup arrives; the
               age bound must win over the would-be hit. *)
            check
              Alcotest.(option string)
              "expired entry misses despite the file existing" None
              (Store.get s ~key:old_key);
            check Alcotest.bool "expired file removed" false
              (Sys.file_exists (entry_file dir old_key));
            check Alcotest.int "counted expired" 1
              (Store.stats s).Store.expired_entries;
            check
              Alcotest.(option string)
              "fresh entry still hits" (Some "fresh")
              (Store.get s ~key:fresh_key)));
    Alcotest.test_case "a hit refreshes the eviction order" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let ka = String.make 32 'a' and kb = String.make 32 'b' in
            put_exn s ~key:ka "payload a";
            put_exn s ~key:kb "payload b";
            backdate dir ka 100.;
            backdate dir kb 50.;
            (* ka is nominally older; reading it must flip the LRU
               order so kb becomes the victim. *)
            ignore (Store.get s ~key:ka);
            let size = (Unix.stat (entry_file dir ka)).Unix.st_size in
            let r =
              Store.gc
                ~budget:{ Store.max_bytes = Some size; max_age_s = None }
                s
            in
            check Alcotest.int "one eviction" 1 r.Store.evicted;
            check
              Alcotest.(option string)
              "touched entry survives" (Some "payload a") (Store.get s ~key:ka);
            check
              Alcotest.(option string)
              "untouched entry evicted" None (Store.get s ~key:kb)));
    Alcotest.test_case "quarantine is outside the budget accounting" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let bad = String.make 32 'f' in
            put_exn s ~key:bad (String.make 4096 'x');
            let oc = open_out (entry_file dir bad) in
            output_string oc (String.make 4096 '?');
            close_out oc;
            check
              Alcotest.(option string)
              "quarantined on read" None (Store.get s ~key:bad);
            check Alcotest.int "one quarantined" 1
              (Store.stats s).Store.quarantined;
            let keep = String.make 32 '0' in
            put_exn s ~key:keep "small";
            let size = (Unix.stat (entry_file dir keep)).Unix.st_size in
            (* Budget = exactly the live entry: if the 4 KiB in
               quarantine/ were counted, this would evict. *)
            let r =
              Store.gc
                ~budget:{ Store.max_bytes = Some size; max_age_s = None }
                s
            in
            check Alcotest.int "quarantined bytes do not force eviction" 0
              r.Store.evicted;
            check Alcotest.int "live entry kept" 1 r.Store.remaining_entries;
            check Alcotest.bool "quarantine preserved" true
              ((Store.stats s).Store.quarantined >= 1)));
    Alcotest.test_case "daemon and CLI handles interleave safely" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            (* One budgeted handle (the daemon, sweeping as it writes)
               and one unbudgeted handle (a CLI run) share the
               directory. Every read must be a miss or the exact
               payload — never a torn or foreign value — and a final
               sweep must land the store within budget. *)
            let daemon =
              open_budgeted dir
                { Store.max_bytes = Some 2048; max_age_s = None }
            in
            let cli = open_store dir in
            let n = 200 in
            let key i = Fmt.str "%032x" i in
            let payload k = "payload:" ^ k in
            let churn handle step =
              let bad = ref 0 in
              for i = 0 to n - 1 do
                let k = key i in
                (match Store.put handle ~key:k (payload k) with
                | Ok () | Error _ -> ());
                let k' = key (i * step mod n) in
                match Store.get handle ~key:k' with
                | None -> ()
                | Some p -> if p <> payload k' then incr bad
              done;
              !bad
            in
            let worker = Domain.spawn (fun () -> churn daemon 7) in
            let cli_bad = churn cli 13 in
            let daemon_bad = Domain.join worker in
            check Alcotest.int "no torn reads through the CLI handle" 0 cli_bad;
            check Alcotest.int "no torn reads through the daemon handle" 0
              daemon_bad;
            ignore (Store.gc daemon);
            check Alcotest.bool "post-gc store is within budget" true
              ((Store.stats daemon).Store.bytes <= 2048)));
  ]

(* --- portable archives -------------------------------------------------- *)

let rewrite path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let archive_tests =
  [
    Alcotest.test_case
      "export excludes skewed, corrupt and quarantined entries" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let ka = String.make 32 'a'
            and kb = String.make 32 'b'
            and kc = String.make 32 'c' in
            put_exn s ~key:ka "alpha";
            put_exn s ~key:kb "beta";
            put_exn s ~key:kc "gamma";
            (* kb: rewritten under a future format version; kc: raw
               damage. Export reads through the validating [get] path,
               so neither may appear in the archive. *)
            rewrite (entry_file dir kb)
              ("entangle-cache/999\n" ^ kb ^ "\nbeta");
            rewrite (entry_file dir kc) "not a cache entry";
            let text, count = Store.export_all s in
            check Alcotest.int "only the valid entry exports" 1 count;
            check Alcotest.int "damage went to quarantine" 1
              (Store.stats s).Store.quarantined;
            with_temp_dir (fun dir2 ->
                let s2 = open_store dir2 in
                match Store.import_all s2 text with
                | Error e -> Alcotest.failf "import: %s" e
                | Ok (imported, rejected) ->
                    check Alcotest.int "imported" 1 imported;
                    check Alcotest.int "rejected" 0 rejected;
                    check
                      Alcotest.(option string)
                      "payload survives the round trip" (Some "alpha")
                      (Store.get s2 ~key:ka);
                    check
                      Alcotest.(option string)
                      "skewed entry never crossed" None
                      (Store.get s2 ~key:kb))));
    Alcotest.test_case "multi-line payloads round-trip byte-exactly" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let key = String.make 32 '1' in
            let payload = "line one\nline two\n\nbinary-ish \000 tail" in
            put_exn s ~key payload;
            let text, _ = Store.export_all s in
            with_temp_dir (fun dir2 ->
                let s2 = open_store dir2 in
                (match Store.import_all s2 text with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "import: %s" e);
                check
                  Alcotest.(option string)
                  "byte-exact" (Some payload) (Store.get s2 ~key))));
    Alcotest.test_case "import check callback rejects entries" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            put_exn s ~key:(String.make 32 'a') "keep";
            put_exn s ~key:(String.make 32 'b') "drop";
            let text, _ = Store.export_all s in
            with_temp_dir (fun dir2 ->
                let s2 = open_store dir2 in
                match
                  Store.import_all
                    ~check:(fun ~key:_ payload -> payload = "keep")
                    s2 text
                with
                | Error e -> Alcotest.failf "import: %s" e
                | Ok (imported, rejected) ->
                    check Alcotest.int "imported" 1 imported;
                    check Alcotest.int "rejected" 1 rejected;
                    check Alcotest.int "store holds only the accepted entry"
                      1
                      (Store.stats s2).Store.entries)));
    Alcotest.test_case "hostile keys cannot escape the store directory"
      `Quick (fun () ->
        (* Archives cross machines, so a crafted key is untrusted input
           aimed at [put]'s objects/<shard>/<key> path. Every non-hex
           key must be rejected before it can name a file. *)
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let entry key payload =
              Fmt.str "%s\n%d\n%s\n" key (String.length payload) payload
            in
            let text =
              Store.archive_header ^ "\n"
              ^ entry "../../../../tmp/entangle-pwned" "evil"
              ^ entry "aa/../escape" "evil"
              ^ entry (String.make 32 'A') "uppercase is not a fingerprint"
              ^ entry (String.make 32 'a') "fine"
            in
            (match Store.import_all s text with
            | Error e -> Alcotest.failf "import: %s" e
            | Ok (imported, rejected) ->
                check Alcotest.int "only the hex key imports" 1 imported;
                check Alcotest.int "hostile keys rejected" 3 rejected);
            check
              Alcotest.(option string)
              "the honest entry landed" (Some "fine")
              (Store.get s ~key:(String.make 32 'a'));
            check Alcotest.bool "no traversal target was written" false
              (Sys.file_exists "/tmp/entangle-pwned")));
    Alcotest.test_case "wrong payload length is caught at the faulty entry"
      `Quick (fun () ->
        (* A declared length that is in range but wrong would silently
           shift the framing of every later entry; the terminator check
           must fail loudly at the entry itself. *)
        with_temp_dir (fun dir ->
            let s = open_store dir in
            let key = String.make 32 'a' in
            let text =
              Fmt.str "%s\n%s\n3\nabcd\n" Store.archive_header key
            in
            match Store.import_all s text with
            | Ok _ -> Alcotest.fail "misframed archive must not import"
            | Error e ->
                check Alcotest.bool "error names the terminator" true
                  (let needle = "terminator" in
                   let n = String.length e and m = String.length needle in
                   let rec at i =
                     i + m <= n
                     && (String.sub e i m = needle || at (i + 1))
                   in
                   at 0)));
    Alcotest.test_case "truncated or foreign archives are structured errors"
      `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = open_store dir in
            put_exn s ~key:(String.make 32 'a') "payload";
            let text, _ = Store.export_all s in
            with_temp_dir (fun dir2 ->
                let s2 = open_store dir2 in
                (match
                   Store.import_all s2
                     (String.sub text 0 (String.length text - 3))
                 with
                | Error _ -> ()
                | Ok _ -> Alcotest.fail "truncated archive must not import");
                match Store.import_all s2 "some other file format\n" with
                | Error _ -> ()
                | Ok _ -> Alcotest.fail "foreign file must not import")));
    Alcotest.test_case
      "cache archive warms a fresh store; junk payloads are rejected" `Quick
      (fun () ->
        with_temp_cache (fun cache ->
            let inst () = Regression.build ~microbatches:2 () in
            let cold, _ = check_with ~cache (inst ()) in
            let ops = (result_stats cold).Entangle.Refine.operators_processed in
            check Alcotest.bool "cold run refines" true (Result.is_ok cold);
            let text, count = Cache.export_archive cache in
            check Alcotest.bool "archive carries the run's entries" true
              (count > 0);
            (* A payload that is valid archive framing but not a valid
               certificate: [import_archive]'s structural validation
               must reject it without poisoning the import. *)
            let junk =
              Fmt.str "%s\n%s\n%d\n%s\n" Store.archive_header
                (String.make 32 'f') (String.length "junk") "junk"
            in
            let tail =
              (* splice the junk entry after the header line *)
              let nl = String.index text '\n' in
              String.sub text (nl + 1) (String.length text - nl - 1)
            in
            with_temp_dir (fun dir2 ->
                match Cache.create ~dir:dir2 () with
                | Error e -> Alcotest.failf "cannot open cache: %s" e
                | Ok cache2 -> (
                    match Cache.import_archive cache2 (junk ^ tail) with
                    | Error e -> Alcotest.failf "import: %s" e
                    | Ok (imported, rejected) ->
                        check Alcotest.int "real entries imported" count
                          imported;
                        check Alcotest.int "junk payload rejected" 1 rejected;
                        (* The imported store warms a re-check of the
                           same instance: every operator a hit, zero
                           saturation... *)
                        let i = inst () in
                        let warm, _ = check_with ~cache:cache2 i in
                        let ws = result_stats warm in
                        check Alcotest.int "warm: every operator from cache"
                          ops ws.Entangle.Refine.cache_hits;
                        check Alcotest.int "warm: zero saturation" 0
                          ws.Entangle.Refine.saturation_iterations;
                        (* ... and the warmed verdict exports a bundle
                           the certexport reader accepts: the archive
                           path feeds the bundle path. *)
                        match warm with
                        | Error _ -> Alcotest.fail "warm run must refine"
                        | Ok success -> (
                            match
                              Entangle.Cert_export.bundle
                                ~producer:"test-archive" ~gs:i.Instance.gs
                                ~gd:i.Instance.gd ~env:i.Instance.env
                                ~input_relation:i.Instance.input_relation
                                success
                            with
                            | Error e -> Alcotest.failf "bundle export: %s" e
                            | Ok b -> (
                                match
                                  Entangle_certexport.Bundle.of_string
                                    (Entangle_certexport.Bundle.to_string b)
                                with
                                | Ok b' ->
                                    check Alcotest.string
                                      "bundle reader agrees on the id"
                                      (Entangle_certexport.Bundle.id b)
                                      (Entangle_certexport.Bundle.id b')
                                | Error e ->
                                    Alcotest.failf "bundle reader rejects: %a"
                                      Entangle_certexport.Cert_error.pp e))))));
  ]

let suite =
  [
    ("cache.fingerprint", fingerprint_tests);
    ("cache.store", store_tests);
    ("cache.recheck", recheck_tests);
    ("cache.retention", retention_tests);
    ("cache.archive", archive_tests);
  ]
