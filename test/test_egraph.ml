(* Tests for the e-graph engine: union-find, congruence closure,
   e-matching, rule application, saturation, and extraction. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

let check = Alcotest.check
let sd = Symdim.of_int
let tensor name = Tensor.create ~name [ sd 4; sd 4 ]

let union_find_tests =
  [
    Alcotest.test_case "fresh singletons" `Quick (fun () ->
        let uf = Union_find.create () in
        let a = Union_find.fresh uf and b = Union_find.fresh uf in
        check Alcotest.bool "distinct" false (Id.equal (Union_find.find uf a) (Union_find.find uf b)));
    Alcotest.test_case "union then find" `Quick (fun () ->
        let uf = Union_find.create () in
        let ids = List.init 100 (fun _ -> Union_find.fresh uf) in
        List.iter (fun i -> ignore (Union_find.union uf (List.hd ids) i)) ids;
        let root = Union_find.find uf (List.hd ids) in
        check Alcotest.bool "all same" true
          (List.for_all (fun i -> Id.equal root (Union_find.find uf i)) ids));
    Alcotest.test_case "growth beyond initial capacity" `Quick (fun () ->
        let uf = Union_find.create () in
        let ids = List.init 1000 (fun _ -> Union_find.fresh uf) in
        check Alcotest.int "size" 1000 (Union_find.size uf);
        check Alcotest.bool "find works" true
          (Id.equal (Union_find.find uf (List.nth ids 999)) (List.nth ids 999)));
  ]

let congruence_tests =
  [
    Alcotest.test_case "hashconsing dedups" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let x = Egraph.add_op g Op.Neg [ a ] in
        let y = Egraph.add_op g Op.Neg [ a ] in
        check Alcotest.bool "same class" true (Egraph.equiv g x y));
    Alcotest.test_case "congruence after union" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let fa = Egraph.add_op g Op.Neg [ a ] in
        let fb = Egraph.add_op g Op.Neg [ b ] in
        check Alcotest.bool "initially distinct" false (Egraph.equiv g fa fb);
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        check Alcotest.bool "congruent" true (Egraph.equiv g fa fb));
    Alcotest.test_case "congruence cascades" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let fa = Egraph.add_op g Op.Neg [ a ] in
        let fb = Egraph.add_op g Op.Neg [ b ] in
        let gfa = Egraph.add_op g Op.Exp [ fa ] in
        let gfb = Egraph.add_op g Op.Exp [ fb ] in
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        check Alcotest.bool "two levels" true (Egraph.equiv g gfa gfb));
    Alcotest.test_case "shape analysis" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (Tensor.create ~name:"a" [ sd 2; sd 3 ]) in
        let b = Egraph.add_leaf g (Tensor.create ~name:"b" [ sd 3; sd 5 ]) in
        let m = Egraph.add_op g Op.Matmul [ a; b ] in
        check Alcotest.bool "matmul shape" true
          (match Egraph.shape_of g m with
          | Some sh -> Shape.equal_syntactic sh [ sd 2; sd 5 ]
          | None -> false));
    Alcotest.test_case "leaf_id and contains_leaf" `Quick (fun () ->
        let g = Egraph.create () in
        let t = tensor "t" in
        let id = Egraph.add_leaf g t in
        check Alcotest.bool "leaf_id" true
          (match Egraph.leaf_id g t with
          | Some c -> Id.equal (Egraph.find g c) (Egraph.find g id)
          | None -> false);
        check Alcotest.bool "contains" true
          (Egraph.contains_leaf g id (Tensor.equal t)));
    Alcotest.test_case "lookup does not insert" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let before = Egraph.num_nodes g in
        check Alcotest.bool "absent" true (Egraph.lookup g (Enode.op Op.Neg [ a ]) = None);
        check Alcotest.int "unchanged" before (Egraph.num_nodes g);
        let n = Egraph.add_op g Op.Neg [ a ] in
        check Alcotest.bool "present now" true
          (match Egraph.lookup g (Enode.op Op.Neg [ a ]) with
          | Some id -> Egraph.equiv g id n
          | None -> false));
    Alcotest.test_case "reachable" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let fa = Egraph.add_op g Op.Neg [ a ] in
        let _fb = Egraph.add_op g Op.Neg [ b ] in
        let r = Egraph.reachable g [ fa ] in
        check Alcotest.bool "a reachable" true (Id.Set.mem (Egraph.find g a) r);
        check Alcotest.bool "b not reachable" false (Id.Set.mem (Egraph.find g b) r));
  ]

let qtest = QCheck_alcotest.to_alcotest

(* Random unions preserve the invariant that canonical nodes of merged
   classes remain findable through the hashcons. *)
let congruence_property =
  qtest
    (QCheck.Test.make ~name:"random unions keep find idempotent" ~count:60
       QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 0 9) (int_range 0 9)))
       (fun pairs ->
         let g = Egraph.create () in
         let leaves =
           Array.init 10 (fun i -> Egraph.add_leaf g (tensor (Printf.sprintf "t%d" i)))
         in
         let apps = Array.map (fun l -> Egraph.add_op g Op.Neg [ l ]) leaves in
         List.iter (fun (i, j) -> ignore (Egraph.union g leaves.(i) leaves.(j))) pairs;
         Egraph.rebuild g;
         (* find is idempotent and unioned leaves have congruent apps *)
         Array.for_all
           (fun id -> Id.equal (Egraph.find g id) (Egraph.find g (Egraph.find g id)))
           leaves
         && List.for_all
              (fun (i, j) -> Egraph.equiv g apps.(i) apps.(j))
              pairs))

let ematch_tests =
  [
    Alcotest.test_case "fixed op pattern" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let _ = Egraph.add_op g Op.Neg [ a ] in
        let pat = Pattern.p Op.Neg [ Pattern.v "x" ] in
        let matches = Ematch.match_all g pat in
        check Alcotest.int "one match" 1 (List.length matches);
        let _, subst = List.hd matches in
        check Alcotest.bool "binds x to a" true
          (Id.equal (Egraph.find g (Subst.var subst "x")) (Egraph.find g a)));
    Alcotest.test_case "family pattern binds operator" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let _ = Egraph.add_op g (Op.Concat { dim = 1 }) [ a; a ] in
        let pat = Pattern.fam "concat" ~bind:"cc" [ Pattern.v "x"; Pattern.v "y" ] in
        match Ematch.match_all g pat with
        | [ (_, subst) ] ->
            check Alcotest.bool "bound op" true
              (Op.equal (Subst.op subst "cc") (Op.Concat { dim = 1 }))
        | ms -> Alcotest.failf "expected 1 match, got %d" (List.length ms));
    Alcotest.test_case "nonlinear variables must agree" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let _ = Egraph.add_op g Op.Add [ a; a ] in
        let _ = Egraph.add_op g Op.Add [ a; b ] in
        let pat = Pattern.p Op.Add [ Pattern.v "x"; Pattern.v "x" ] in
        check Alcotest.int "only the aa node" 1
          (List.length (Ematch.match_all g pat)));
    Alcotest.test_case "arity must match" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let _ = Egraph.add_op g Op.Sum_n [ a; a; a ] in
        let pat = Pattern.p Op.Sum_n [ Pattern.v "x"; Pattern.v "y" ] in
        check Alcotest.int "no binary match on ternary sum" 0
          (List.length (Ematch.match_all g pat)));
    Alcotest.test_case "matching through class membership" `Quick (fun () ->
        (* A pattern matches a node contained anywhere in the class, not
           just the syntactic term that was queried. *)
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let neg = Egraph.add_op g Op.Neg [ a ] in
        ignore (Egraph.union g neg a);
        Egraph.rebuild g;
        let outer = Egraph.add_op g Op.Exp [ a ] in
        let pat = Pattern.p Op.Exp [ Pattern.p Op.Neg [ Pattern.v "x" ] ] in
        let hits = List.filter (fun (c, _) -> Egraph.equiv g c outer) (Ematch.match_all g pat) in
        check Alcotest.bool "found" true (hits <> []));
    Alcotest.test_case "truncate at the budget boundary" `Quick (fun () ->
        let exact = List.init Ematch.per_class_budget Fun.id in
        check Alcotest.bool "exact fit returned physically" true
          (Ematch.truncate exact == exact);
        let over = List.init (Ematch.per_class_budget + 1) Fun.id in
        let t = Ematch.truncate over in
        check Alcotest.int "cut to budget" Ematch.per_class_budget
          (List.length t);
        check Alcotest.bool "prefix preserved in order" true
          (List.for_all2 ( = ) t (List.init Ematch.per_class_budget Fun.id));
        check Alcotest.bool "short list untouched" true
          (let l = [ 1; 2; 3 ] in
           Ematch.truncate l == l));
    Alcotest.test_case "delta matching: since -1 equals full" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let n = Egraph.add_op g Op.Neg [ a ] in
        let pat = Pattern.p Op.Neg [ Pattern.v "x" ] in
        check Alcotest.int "same count"
          (List.length (Ematch.match_class g pat n))
          (List.length
             (Ematch.match_class_delta g ~since:(-1) ~conditional:false pat n)));
    Alcotest.test_case "delta matching: clean classes yield nothing" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let n = Egraph.add_op g Op.Neg [ a ] in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        let pat = Pattern.p Op.Neg [ Pattern.v "x" ] in
        check Alcotest.int "no fresh matches" 0
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:false pat n)));
    Alcotest.test_case "delta matching: only nodes added since" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let k = Egraph.add_op g Op.Add [ a; b ] in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        let c = Egraph.add_leaf g (tensor "c") in
        let d = Egraph.add_leaf g (tensor "d") in
        let k2 = Egraph.add_op g Op.Add [ c; d ] in
        ignore (Egraph.union g k k2);
        Egraph.rebuild g;
        let pat = Pattern.p Op.Add [ Pattern.v "x"; Pattern.v "y" ] in
        check Alcotest.int "full sees both" 2
          (List.length (Ematch.match_class g pat k));
        check Alcotest.int "delta sees the new node only" 1
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:false pat k)));
    Alcotest.test_case "delta matching: merge below the root re-admits" `Quick
      (fun () ->
        let g = Egraph.create () in
        let d = Egraph.add_leaf g (tensor "d") in
        let e = Egraph.add_op g Op.Exp [ d ] in
        let a = Egraph.add_leaf g (tensor "a") in
        let na = Egraph.add_op g Op.Neg [ a ] in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        let pat = Pattern.p Op.Exp [ Pattern.p Op.Neg [ Pattern.v "x" ] ] in
        check Alcotest.int "no match yet" 0
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:false pat e));
        ignore (Egraph.union g d na);
        Egraph.rebuild g;
        check Alcotest.int "merge exposed the inner neg" 1
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:false pat e)));
    Alcotest.test_case "delta matching: variable bindings skip unless \
                        conditional" `Quick (fun () ->
        (* A structural change inside a variable-bound class yields the
           same substitution with the same syntactic outcome, so it is
           skipped — unless the rule's applier may inspect the bound
           class, which [conditional:true] declares. *)
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let e = Egraph.add_op g Op.Exp [ Egraph.add_op g Op.Neg [ a ] ] in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        let c = Egraph.add_leaf g (tensor "c") in
        ignore (Egraph.union g a c);
        Egraph.rebuild g;
        let pat = Pattern.p Op.Exp [ Pattern.p Op.Neg [ Pattern.v "x" ] ] in
        check Alcotest.int "syntactic outcome unchanged: skipped" 0
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:false pat e));
        check Alcotest.int "conditional applier: re-admitted" 1
          (List.length
             (Ematch.match_class_delta g ~since:gen ~conditional:true pat e)));
    Alcotest.test_case "instantiate insert vs check-only" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let subst =
          match Subst.bind_var Subst.empty "x" a with Some st -> st | None -> assert false
        in
        let rhs = Pattern.p Op.Exp [ Pattern.v "x" ] in
        check Alcotest.bool "check-only fails on absent" true
          (Ematch.instantiate ~mode:Ematch.Check_only g subst rhs = None);
        check Alcotest.bool "insert succeeds" true
          (Ematch.instantiate ~mode:Ematch.Insert g subst rhs <> None);
        check Alcotest.bool "check-only succeeds now" true
          (Ematch.instantiate ~mode:Ematch.Check_only g subst rhs <> None));
  ]

let incremental_tests =
  [
    Alcotest.test_case "cached counters match recomputation" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let na = Egraph.add_op g Op.Neg [ a ] in
        let _nb = Egraph.add_op g Op.Neg [ b ] in
        check Alcotest.int "after adds" (Egraph.Debug.recompute_num_nodes g)
          (Egraph.num_nodes g);
        ignore (Egraph.union g a b);
        ignore (Egraph.union g na a);
        check Alcotest.int "after unions" (Egraph.Debug.recompute_num_nodes g)
          (Egraph.num_nodes g);
        Egraph.rebuild g;
        (* Rebuild deduplicates the congruent neg nodes; the counter
           must track the removal. *)
        check Alcotest.int "after rebuild" (Egraph.Debug.recompute_num_nodes g)
          (Egraph.num_nodes g);
        check Alcotest.int "num_classes" (List.length (Egraph.class_ids g))
          (Egraph.num_classes g));
    Alcotest.test_case "generations advance and stamp dirty classes" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        check Alcotest.int "nothing dirty" 0
          (List.length (Egraph.classes_modified_since g gen));
        let b = Egraph.add_leaf g (tensor "b") in
        check Alcotest.bool "add advances the counter" true
          (Egraph.generation g > gen);
        let dirty = Egraph.classes_modified_since g gen in
        check Alcotest.bool "new class dirty" true
          (List.exists (Id.equal (Egraph.find g b)) dirty);
        check Alcotest.bool "old class clean" false
          (List.exists (Id.equal (Egraph.find g a)) dirty));
    Alcotest.test_case "union dirt propagates to ancestors on rebuild" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let n = Egraph.add_op g Op.Neg [ a ] in
        let e = Egraph.add_op g Op.Exp [ n ] in
        Egraph.rebuild g;
        let gen = Egraph.generation g in
        let c = Egraph.add_leaf g (tensor "c") in
        ignore (Egraph.union g a c);
        Egraph.rebuild g;
        let dirty = Egraph.classes_modified_since g gen in
        let mem id = List.exists (Id.equal (Egraph.find g id)) dirty in
        check Alcotest.bool "merged class dirty" true (mem a);
        check Alcotest.bool "parent dirty" true (mem n);
        check Alcotest.bool "grandparent dirty" true (mem e);
        (* Propagated dirt is modification-only: the ancestors' own node
           sets did not change. *)
        check Alcotest.bool "grandparent structurally clean" true
          (Egraph.structural_at g (Egraph.find g e) <= gen);
        check Alcotest.bool "stamps ordered" true
          (Egraph.structural_at g (Egraph.find g e)
          <= Egraph.modified_at g (Egraph.find g e)));
    Alcotest.test_case "family index tracks adds and unions" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let n = Egraph.add_op g Op.Neg [ a ] in
        let e = Egraph.add_op g Op.Exp [ a ] in
        let mem fam id =
          List.exists
            (Id.equal (Egraph.find g id))
            (Egraph.classes_with_family g fam)
        in
        check Alcotest.bool "neg indexed" true (mem "neg" n);
        check Alcotest.bool "exp indexed" true (mem "exp" e);
        check Alcotest.bool "leaf class has no neg" false (mem "neg" a);
        ignore (Egraph.union g n e);
        Egraph.rebuild g;
        (* The merged class carries both families under its root. *)
        check Alcotest.bool "merged root under neg" true (mem "neg" n);
        check Alcotest.bool "merged root under exp" true (mem "exp" n));
    Alcotest.test_case "union records dropped shape conflicts" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (Tensor.create ~name:"a" [ sd 4; sd 4 ]) in
        let b = Egraph.add_leaf g (Tensor.create ~name:"b" [ sd 2; sd 3 ]) in
        check Alcotest.int "none yet" 0
          (List.length (Egraph.Debug.shape_conflicts g));
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        match Egraph.Debug.shape_conflicts g with
        | [ (root, kept, dropped) ] ->
            check Alcotest.bool "root canonical" true
              (Id.equal (Egraph.find g root) (Egraph.find g a));
            let is44 s = Shape.equal_syntactic s [ sd 4; sd 4 ] in
            let is23 s = Shape.equal_syntactic s [ sd 2; sd 3 ] in
            check Alcotest.bool "both shapes recorded" true
              ((is44 kept && is23 dropped) || (is23 kept && is44 dropped))
        | l -> Alcotest.failf "expected 1 conflict, got %d" (List.length l));
  ]

let runner_tests =
  [
    Alcotest.test_case "saturation applies rule and counts hits" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let id = Egraph.add_op g Op.Identity [ a ] in
        let rule =
          Rule.make "identity-elim" (Pattern.p Op.Identity [ Pattern.v "x" ]) (Pattern.v "x")
        in
        let c = Entangle_trace.Collect.create () in
        let report =
          Runner.run ~sink:(Entangle_trace.Collect.sink c) g [ rule ]
        in
        check Alcotest.bool "saturated" true report.Runner.saturated;
        check Alcotest.bool "identity = a" true (Egraph.equiv g id a);
        (* Rule applications surface as rule-hit trace events now. *)
        let hits =
          List.fold_left
            (fun acc (ev : Entangle_trace.Event.t) ->
              if ev.name = "rule-hit" && ev.cat = "rule" then
                match List.assoc_opt "rule" ev.args with
                | Some (Entangle_trace.Event.Str "identity-elim") ->
                    acc
                    + (match List.assoc_opt "hits" ev.args with
                      | Some (Entangle_trace.Event.Int n) -> n
                      | _ -> 0)
                | _ -> acc
              else acc)
            0
            (Entangle_trace.Collect.events c)
        in
        check Alcotest.int "hit counted" 1 hits);
    Alcotest.test_case "node limit stops runaway rules" `Quick (fun () ->
        (* x -> neg(exp(x)) keeps creating fresh exp classes (the
           self-union of the rewrite never collapses the new subterm),
           so the runner must stop at the node cap. *)
        let g = Egraph.create () in
        let _ = Egraph.add_leaf g (tensor "a") in
        let rule =
          Rule.make "grow" (Pattern.v "x")
            (Pattern.p Op.Neg [ Pattern.p Op.Exp [ Pattern.v "x" ] ])
        in
        let limits = { Runner.default_limits with Runner.max_nodes = 50 } in
        let report = Runner.run ~limits g [ rule ] in
        check Alcotest.bool "not saturated" false report.Runner.saturated;
        check Alcotest.bool "bounded" true (report.Runner.nodes < 500));
    Alcotest.test_case "conditional rule with shape condition" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (Tensor.create ~name:"a" [ sd 2; sd 3 ]) in
        let sl =
          Egraph.add_op g (Op.Slice { dim = 0; start = sd 0; stop = sd 2 }) [ a ]
        in
        let rules =
          Entangle_lemmas.Lemma.rules
            [ List.find (fun (l : Entangle_lemmas.Lemma.t) ->
                  l.name = "slice-full-range")
                Entangle_lemmas.Registry.all ]
        in
        ignore (Runner.run g rules);
        check Alcotest.bool "full slice collapsed" true (Egraph.equiv g sl a));
    Alcotest.test_case "backoff bans an overflowing rule, cool-down finishes"
      `Quick (fun () ->
        let g = Egraph.create () in
        let leaves =
          List.init 3 (fun i -> Egraph.add_leaf g (tensor (Printf.sprintf "t%d" i)))
        in
        let ids = List.map (fun l -> Egraph.add_op g Op.Identity [ l ]) leaves in
        let rule =
          Rule.make "identity-elim"
            (Pattern.p Op.Identity [ Pattern.v "x" ])
            (Pattern.v "x")
        in
        (* Three matches against a budget of two: the rule overflows and
           gets banned; the cool-down pass must still reach the full
           saturated e-graph. *)
        let state =
          Runner.create_state ~scheduler:Runner.Backoff ~incremental:true
            ~match_limit:2 ~ban_length:1 ()
        in
        let report = Runner.run ~state g [ rule ] in
        check Alcotest.bool "saturated" true report.Runner.saturated;
        List.iter2
          (fun id l ->
            check Alcotest.bool "identity collapsed" true (Egraph.equiv g id l))
          ids leaves;
        check Alcotest.bool "a ban was issued" true
          ((Runner.state_stats state).Runner.bans >= 1));
    Alcotest.test_case "unconfirmed saturation defers the cool-down" `Quick
      (fun () ->
        (* A constrained rule is deferred to the cool-down under the
           backoff scheduler, so with [confirm_saturation:false] the
           runner hands back an unconfirmed candidate (zero unions, not
           saturated) without firing it; asking again with confirmation
           on fires it and reaches a genuine fixpoint. *)
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let na = Egraph.add_op g Op.Neg [ a ] in
        let ea = Egraph.add_op g Op.Exp [ a ] in
        let rule =
          Rule.make ~constrained:true "ratify"
            (Pattern.p Op.Neg [ Pattern.v "x" ])
            (Pattern.p Op.Exp [ Pattern.v "x" ])
        in
        let state =
          Runner.create_state ~scheduler:Runner.Backoff ~incremental:true ()
        in
        let r1 = Runner.run ~confirm_saturation:false ~state g [ rule ] in
        check Alcotest.bool "candidate, not confirmed" false
          r1.Runner.saturated;
        check Alcotest.int "nothing applied" 0 r1.Runner.unions;
        check Alcotest.bool "classes still apart" false (Egraph.equiv g na ea);
        let r2 = Runner.run ~confirm_saturation:true ~state g [ rule ] in
        check Alcotest.bool "confirmed" true r2.Runner.saturated;
        check Alcotest.bool "constrained rule fired" true
          (Egraph.equiv g na ea));
  ]

(* Satellite: whatever the scheduler and matching mode, saturation must
   reach the same equivalence closure. Random unions seed diverse
   e-graph shapes; a tight match budget forces actual bans on the
   backoff states so the cool-down path is exercised too. *)
let scheduler_equivalence_property =
  qtest
    (QCheck.Test.make ~name:"schedulers reach identical equivalences" ~count:40
       QCheck.(
         list_of_size (Gen.int_range 0 15)
           (pair (int_range 0 5) (int_range 0 5)))
       (fun pairs ->
         let rules =
           [
             Rule.make "double-neg"
               (Pattern.p Op.Neg [ Pattern.p Op.Neg [ Pattern.v "x" ] ])
               (Pattern.v "x");
             Rule.make "identity-elim"
               (Pattern.p Op.Identity [ Pattern.v "x" ])
               (Pattern.v "x");
           ]
         in
         let build scheduler incremental =
           let g = Egraph.create () in
           let leaves =
             Array.init 6 (fun i ->
                 Egraph.add_leaf g (tensor (Printf.sprintf "t%d" i)))
           in
           let wrap f = Array.to_list (Array.map f leaves) in
           let terms =
             Array.to_list leaves
             @ wrap (fun l -> Egraph.add_op g Op.Neg [ l ])
             @ wrap (fun l ->
                   Egraph.add_op g Op.Neg [ Egraph.add_op g Op.Neg [ l ] ])
             @ wrap (fun l -> Egraph.add_op g Op.Identity [ l ])
           in
           List.iter
             (fun (i, j) -> ignore (Egraph.union g leaves.(i) leaves.(j)))
             pairs;
           Egraph.rebuild g;
           let state =
             Runner.create_state ~scheduler ~incremental ~match_limit:4
               ~ban_length:1 ()
           in
           ignore (Runner.run ~state g rules);
           (* Terms were created in the same order in every graph, so
              positions correspond across configurations. *)
           List.map
             (fun x -> List.map (fun y -> Egraph.equiv g x y) terms)
             terms
         in
         let reference = build Runner.Simple false in
         List.for_all
           (fun m -> m = reference)
           [
             build Runner.Simple true;
             build Runner.Backoff false;
             build Runner.Backoff true;
           ]))

let extract_tests =
  [
    Alcotest.test_case "best picks smallest member" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let deep = Egraph.add_op g Op.Neg [ Egraph.add_op g Op.Neg [ a ] ] in
        ignore (Egraph.union g deep a);
        Egraph.rebuild g;
        match Extract.best g deep with
        | Some e -> check Alcotest.int "leaf wins" 0 (Expr.size e)
        | None -> Alcotest.fail "no extraction");
    Alcotest.test_case "best_clean rejects dirty-only classes" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let m = Egraph.add_op g Op.Matmul [ a; b ] in
        check Alcotest.bool "no clean form" true
          (Extract.best_clean g ~leaf_ok:(fun _ -> true) m = None));
    Alcotest.test_case "best_clean respects leaf filter" `Quick (fun () ->
        let g = Egraph.create () in
        let ta = tensor "a" and tb = tensor "b" in
        let a = Egraph.add_leaf g ta in
        let b = Egraph.add_leaf g tb in
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        (match Extract.best_clean g ~leaf_ok:(Tensor.equal tb) a with
        | Some (Expr.Leaf t) -> check Alcotest.bool "picked b" true (Tensor.equal t tb)
        | _ -> Alcotest.fail "expected leaf b");
        check Alcotest.bool "empty filter" true
          (Extract.best_clean g ~leaf_ok:(fun _ -> false) a = None));
    Alcotest.test_case "best_filtered excludes operators" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let b = Egraph.add_leaf g (tensor "b") in
        let s = Egraph.add_op g Op.Sum_n [ a; b ] in
        let c = Egraph.add_op g (Op.Concat { dim = 0 }) [ a; b ] in
        ignore (Egraph.union g s c);
        Egraph.rebuild g;
        match
          Extract.best_filtered g
            ~node_ok:(fun op -> Op.is_clean op && not (Op.equal op Op.Sum_n))
            ~leaf_ok:(fun _ -> true) s
        with
        | Some (Expr.App (op, _)) ->
            check Alcotest.bool "picked concat" true (Op.equal op (Op.Concat { dim = 0 }))
        | _ -> Alcotest.fail "expected concat extraction");
    Alcotest.test_case "extraction avoids cycles" `Quick (fun () ->
        (* a = neg(a) creates a cyclic class; extraction must still
           terminate and return the leaf. *)
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "a") in
        let na = Egraph.add_op g Op.Neg [ a ] in
        ignore (Egraph.union g na a);
        Egraph.rebuild g;
        match Extract.best g a with
        | Some e -> check Alcotest.int "leaf" 0 (Expr.size e)
        | None -> Alcotest.fail "no extraction");
  ]

let suite =
  [
    ("egraph.union-find", union_find_tests);
    ("egraph.congruence", congruence_tests @ [ congruence_property ]);
    ("egraph.ematch", ematch_tests);
    ("egraph.incremental", incremental_tests);
    ("egraph.runner", runner_tests @ [ scheduler_equivalence_property ]);
    ("egraph.extract", extract_tests);
  ]
