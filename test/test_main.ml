(* Aggregated test entry point: one alcotest run over every suite. *)

let () =
  Alcotest.run "entangle"
    (Test_symbolic.suite @ Test_ir.suite @ Test_ndarray.suite @ Test_interp.suite
   @ Test_egraph.suite @ Test_lemmas.suite @ Test_core.suite
   @ Test_models.suite @ Test_autodiff.suite @ Test_serial.suite @ Test_fuzz.suite @ Test_report.suite
   @ Test_analysis.suite @ Test_verify.suite @ Test_trace.suite
   @ Test_resilience.suite @ Test_cache.suite @ Test_par.suite
   @ Test_serve.suite @ Test_certexport.suite)
