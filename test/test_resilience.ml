(* Robustness pipeline tests: structured verdicts, budgets and
   deadlines, escalation retries, multi-fault localization and the
   failpoint machinery itself. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_dist
open Entangle_models
module B = Graph.Builder
module Failpoint = Entangle_failpoint.Failpoint
module Runner = Entangle_egraph.Runner

let sd = Symdim.of_int

(* Two independent activation branches joined by an add: corrupting
   each branch in the distributed graph seeds two faults that cannot
   shadow one another, while the join depends on both. *)
let branches_pair ?(bug_a = false) ?(bug_b = false) () =
  let bs = B.create "branches-seq" in
  let x = B.input bs "x" [ sd 8; sd 4 ] in
  let y = B.input bs "y" [ sd 8; sd 4 ] in
  let a = B.add bs ~name:"a" Op.Gelu [ x ] in
  let b = B.add bs ~name:"b" Op.Relu [ y ] in
  let z = B.add bs ~name:"z" Op.Add [ a; b ] in
  B.output bs z;
  let gs = B.finish bs in
  let ctx = Lower.create ~name:"branches-dist" ~degree:2 () in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let ys = Lower.shard_input ctx y ~dim:0 in
  let op_a = if bug_a then Op.Silu else Op.Gelu in
  let op_b = if bug_b then Op.Tanh else Op.Relu in
  let as_ = List.map (fun t -> Lower.add ctx op_a [ t ]) xs in
  let bs_ = List.map (fun t -> Lower.add ctx op_b [ t ]) ys in
  let zs = List.map2 (fun a b -> Lower.add ctx Op.Add [ a; b ]) as_ bs_ in
  List.iter (Lower.output ctx) zs;
  let gd, input_relation = Lower.finish ctx in
  (gs, gd, input_relation)

let check ?(config = Entangle.Config.default) (gs, gd, input_relation) =
  Entangle.Refine.check ~config ~gs ~gd ~input_relation ()

let op_name n = Op.name (Node.op n)

let fail_unexpected_ok () = Alcotest.fail "expected a refinement failure"

(* --- verdicts ----------------------------------------------------------- *)

let test_unmapped_verdict () =
  match check (branches_pair ~bug_a:true ()) with
  | Ok _ -> fail_unexpected_ok ()
  | Error f -> (
      Alcotest.(check int) "exit code" 1
        (Entangle.Refine.exit_code (Error f));
      match f.Entangle.Refine.verdict with
      | Entangle.Refine.Unmapped _ -> ()
      | v ->
          Alcotest.failf "expected Unmapped, got %s"
            (Entangle.Refine.verdict_to_string v))

let test_check_deadline_inconclusive () =
  let config =
    Entangle.Config.default |> Entangle.Config.with_check_deadline (Some 0.)
  in
  match check ~config (branches_pair ()) with
  | Ok _ -> fail_unexpected_ok ()
  | Error f -> (
      Alcotest.(check int) "exit code" 2
        (Entangle.Refine.exit_code (Error f));
      match f.Entangle.Refine.verdict with
      | Entangle.Refine.Inconclusive
          {
            budget = Runner.Deadline;
            scope = Entangle.Refine.Check_scope;
            _;
          } ->
          ()
      | v ->
          Alcotest.failf "expected check-deadline Inconclusive, got %s"
            (Entangle.Refine.verdict_to_string v))

let test_op_deadline_retries () =
  (* A zero per-operator allowance makes every attempt (including both
     default escalation rungs, each with a fresh allowance) trip the
     deadline; the verdict records the rungs consumed. *)
  let config =
    Entangle.Config.default |> Entangle.Config.with_op_deadline (Some 0.)
  in
  match check ~config (branches_pair ()) with
  | Ok _ -> fail_unexpected_ok ()
  | Error f -> (
      match f.Entangle.Refine.verdict with
      | Entangle.Refine.Inconclusive
          {
            budget = Runner.Deadline;
            scope = Entangle.Refine.Operator_scope;
            retries_used;
          } ->
          Alcotest.(check int) "both rungs consumed" 2 retries_used;
          Alcotest.(check int) "retries in stats" 2
            f.Entangle.Refine.stats.Entangle.Refine.retries;
          Alcotest.(check bool) "budget trips counted" true
            (f.Entangle.Refine.stats.Entangle.Refine.budget_trips >= 3)
      | v ->
          Alcotest.failf "expected operator-deadline Inconclusive, got %s"
            (Entangle.Refine.verdict_to_string v))

let test_internal_verdict_localizes_failpoint () =
  Failpoint.clear ();
  (match Failpoint.activate_spec "egraph.ematch=nth:1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let result = check (branches_pair ()) in
  Failpoint.clear ();
  match result with
  | Ok _ -> fail_unexpected_ok ()
  | Error f -> (
      Alcotest.(check int) "exit code" 3
        (Entangle.Refine.exit_code (Error f));
      match f.Entangle.Refine.verdict with
      | Entangle.Refine.Internal { failpoint = Some "egraph.ematch"; _ } -> ()
      | v ->
          Alcotest.failf "expected Internal at egraph.ematch, got %s"
            (Entangle.Refine.verdict_to_string v))

(* --- escalation --------------------------------------------------------- *)

(* A node budget small enough that the base attempt trips it before
   finding a mapping, with a single generous rung that lifts the
   starvation: success must arrive via a retry. *)
let starved_limits = { Runner.default_limits with Runner.max_nodes = 8 }

let generous_rung =
  [
    {
      Entangle.Config.scale = 64;
      scheduler = Runner.Backoff;
      incremental = true;
    };
  ]

let test_escalation_recovers () =
  let base =
    Entangle.Config.default
    |> Entangle.Config.with_limits starved_limits
    |> Entangle.Config.with_escalation []
  in
  (match check ~config:base (branches_pair ()) with
  | Ok _ -> Alcotest.fail "base attempt unexpectedly succeeded; tighten limits"
  | Error f -> (
      match f.Entangle.Refine.verdict with
      | Entangle.Refine.Inconclusive
          { budget = Runner.Nodes; retries_used = 0; _ } ->
          ()
      | v ->
          Alcotest.failf "expected Inconclusive without escalation, got %s"
            (Entangle.Refine.verdict_to_string v)));
  let escalated =
    Entangle.Config.default
    |> Entangle.Config.with_limits starved_limits
    |> Entangle.Config.with_escalation generous_rung
  in
  match check ~config:escalated (branches_pair ()) with
  | Error f ->
      Alcotest.failf "escalation did not recover: %s"
        (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
  | Ok s ->
      Alcotest.(check bool) "retried at least once" true
        (s.Entangle.Refine.stats.Entangle.Refine.retries > 0)

(* --- keep_going multi-fault localization -------------------------------- *)

let keep_going_config =
  Entangle.Config.default |> Entangle.Config.with_keep_going true

let test_keep_going_finds_both_faults () =
  match
    check ~config:keep_going_config
      (branches_pair ~bug_a:true ~bug_b:true ())
  with
  | Ok _ -> fail_unexpected_ok ()
  | Error f ->
      let fault_ops =
        List.map
          (fun (fault : Entangle.Refine.fault) ->
            op_name fault.Entangle.Refine.fault_operator)
          f.Entangle.Refine.faults
      in
      Alcotest.(check (list string))
        "both independent faults localized" [ "gelu"; "relu" ]
        (List.sort compare fault_ops);
      Alcotest.(check (list string))
        "the join is skipped, not blamed" [ "add" ]
        (List.map op_name f.Entangle.Refine.dependents_skipped);
      (* The failure's scalar fields mirror the first fault in
         topological order, whichever branch that is. *)
      Alcotest.(check string) "first fault heads the failure"
        (List.hd fault_ops)
        (op_name f.Entangle.Refine.operator)

let is_opaque_leaf = function
  | Expr.Leaf l ->
      String.starts_with ~prefix:"%opaque:" (Fmt.str "%a" Tensor.pp_name l)
  | _ -> false

let test_keep_going_single_fault_still_checks_siblings () =
  let ((gs, _, _) as pair) = branches_pair ~bug_a:true () in
  match check ~config:keep_going_config pair with
  | Ok _ -> fail_unexpected_ok ()
  | Error f ->
      Alcotest.(check (list string))
        "only the corrupted branch is a fault" [ "gelu" ]
        (List.map
           (fun (fault : Entangle.Refine.fault) ->
             op_name fault.Entangle.Refine.fault_operator)
           f.Entangle.Refine.faults);
      Alcotest.(check (list string))
        "join skipped (tainted input)" [ "add" ]
        (List.map op_name f.Entangle.Refine.dependents_skipped);
      (* The healthy branch was still checked: its output is mapped for
         real, not by a placeholder. *)
      let b_node = List.find (fun n -> op_name n = "relu") (Graph.nodes gs) in
      let mappings =
        Entangle.Relation.find f.Entangle.Refine.partial_relation (Node.output b_node)
      in
      Alcotest.(check bool) "healthy branch genuinely mapped" true
        (mappings <> [] && not (List.exists is_opaque_leaf mappings))

let test_keep_going_placeholders_in_partial_relation () =
  match check ~config:keep_going_config (branches_pair ~bug_a:true ()) with
  | Ok _ -> fail_unexpected_ok ()
  | Error f ->
      let opaque =
        List.filter
          (fun (_, exprs) -> List.exists is_opaque_leaf exprs)
          (Entangle.Relation.bindings f.Entangle.Refine.partial_relation)
      in
      Alcotest.(check bool) "opaque placeholders bound" true (opaque <> [])

let test_keep_going_clean_model_unchanged () =
  match check ~config:keep_going_config (branches_pair ()) with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "keep_going broke a clean model: %s"
        (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)

let test_keep_going_bugs_zoo_unchanged () =
  (* Every case-study bug must still be detected with multi-fault
     localization on. *)
  List.iter
    (fun case ->
      match Bugs.run ~config:keep_going_config case with
      | Bugs.Detected _ -> ()
      | Bugs.Missed ->
          Alcotest.failf "bug %d missed under keep_going" case.Bugs.id)
    (Bugs.all ())

(* --- failpoint unit tests ----------------------------------------------- *)

let test_failpoint_nth () =
  Failpoint.clear ();
  let fp = Failpoint.declare "test.nth" in
  Failpoint.set "test.nth" (Failpoint.Nth 3);
  Failpoint.hit fp;
  Failpoint.hit fp;
  (match Failpoint.hit fp with
  | () -> Alcotest.fail "third hit should fire"
  | exception Failpoint.Injected "test.nth" -> ());
  (* One-shot: the nth trigger does not re-fire. *)
  Failpoint.hit fp;
  Alcotest.(check int) "fired once" 1 (Failpoint.fired fp);
  Failpoint.clear ()

let test_failpoint_every () =
  Failpoint.clear ();
  let fp = Failpoint.declare "test.every" in
  Failpoint.set "test.every" (Failpoint.Every 2);
  let fires = ref 0 in
  for _ = 1 to 10 do
    try Failpoint.hit fp with Failpoint.Injected _ -> incr fires
  done;
  Alcotest.(check int) "every:2 fires 5/10" 5 !fires;
  Failpoint.clear ()

let test_failpoint_prob_deterministic () =
  Failpoint.clear ();
  let fp = Failpoint.declare "test.prob" in
  let pattern () =
    Failpoint.set "test.prob" (Failpoint.Prob (0.3, 42));
    List.init 50 (fun _ ->
        try
          Failpoint.hit fp;
          false
        with Failpoint.Injected _ -> true)
  in
  let a = pattern () and b = pattern () in
  Alcotest.(check (list bool)) "same seed, same pattern" a b;
  Alcotest.(check bool) "fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "not always" true (List.mem false a);
  Failpoint.clear ()

let test_failpoint_spec_parsing () =
  Failpoint.clear ();
  (match Failpoint.activate_spec "test.a=nth:2, test.b=every:3" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Pending triggers arm at declaration. *)
  let a = Failpoint.declare "test.a" in
  Alcotest.(check bool) "pending trigger armed on declare" true
    (Failpoint.armed a);
  (match Failpoint.activate_spec "test.a=off" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "off disarms" false (Failpoint.armed a);
  List.iter
    (fun bad ->
      match Failpoint.activate_spec bad with
      | Ok () -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "test.a"; "test.a=nth:0"; "test.a=sometimes"; "test.a=prob:1.5" ];
  Failpoint.clear ()

let test_failpoint_catalog_covers_subsystems () =
  (* The planted failpoints self-declare when their libraries
     initialize; by test time all four subsystems must be present. *)
  let names = Failpoint.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " declared") true (List.mem n names))
    [ "egraph.rebuild"; "egraph.ematch"; "egraph.extract"; "symbolic.decide" ]

let suite =
  [
    ( "resilience.verdicts",
      [
        Alcotest.test_case "corrupted model is Unmapped (exit 1)" `Quick
          test_unmapped_verdict;
        Alcotest.test_case "check deadline is Inconclusive (exit 2)" `Quick
          test_check_deadline_inconclusive;
        Alcotest.test_case "op deadline exhausts the ladder" `Quick
          test_op_deadline_retries;
        Alcotest.test_case "injected fault is Internal (exit 3)" `Quick
          test_internal_verdict_localizes_failpoint;
      ] );
    ( "resilience.escalation",
      [
        Alcotest.test_case "ladder recovers a starved check" `Quick
          test_escalation_recovers;
      ] );
    ( "resilience.keep-going",
      [
        Alcotest.test_case "two independent faults in one run" `Quick
          test_keep_going_finds_both_faults;
        Alcotest.test_case "dependents are skipped, siblings checked" `Quick
          test_keep_going_single_fault_still_checks_siblings;
        Alcotest.test_case "faulty outputs bound to %opaque placeholders"
          `Quick test_keep_going_placeholders_in_partial_relation;
        Alcotest.test_case "clean model verdict unchanged" `Quick
          test_keep_going_clean_model_unchanged;
        Alcotest.test_case "bugs zoo still detected" `Slow
          test_keep_going_bugs_zoo_unchanged;
      ] );
    ( "resilience.failpoint",
      [
        Alcotest.test_case "nth trigger" `Quick test_failpoint_nth;
        Alcotest.test_case "every trigger" `Quick test_failpoint_every;
        Alcotest.test_case "prob trigger is seed-deterministic" `Quick
          test_failpoint_prob_deterministic;
        Alcotest.test_case "spec grammar" `Quick test_failpoint_spec_parsing;
        Alcotest.test_case "catalog covers all subsystems" `Quick
          test_failpoint_catalog_covers_subsystems;
      ] );
  ]
