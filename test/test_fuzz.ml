(* Differential fuzzing of the whole pipeline.

   Random sequential models (chains of row-distributable operators) are
   lowered mechanically to sequence-sharded implementations; the checker
   must prove refinement, and the returned relation must replay
   numerically (positive family). The negative family corrupts one
   operator of the distributed graph and the checker must reject.

   This is the fuzz-testing methodology of the related work (NNSmith
   et al.) turned on the checker itself: soundness violations would show
   up as a corrupted model accepted, completeness regressions as a
   correct lowering rejected. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_dist
open Entangle_models
module B = Graph.Builder

let sd = Symdim.of_int
let d_model = 4
let batch = 8

(* The operator menu: everything here distributes over row sharding. *)
type step =
  | Unary of Op.t
  | Binary_fresh of Op.t  (** new sharded input as second operand *)
  | Linear  (** matmul with a fresh replicated square weight *)
  | Norm  (** layernorm with fresh replicated weights *)
  | Row_softmax

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Unary (List.nth [ Op.Gelu; Op.Silu; Op.Relu; Op.Tanh ] i)) (int_range 0 3));
        (3, map (fun i -> Binary_fresh (List.nth [ Op.Add; Op.Sub; Op.Mul ] i)) (int_range 0 2));
        (2, return Linear);
        (1, return Norm);
        (1, return Row_softmax);
      ])

let steps_gen = QCheck.Gen.(list_size (int_range 1 6) step_gen)

let arbitrary_steps =
  QCheck.make ~print:(fun steps -> string_of_int (List.length steps)) steps_gen

(* Build the sequential model and a degree-[p] sharded lowering for a
   list of steps, optionally corrupting the distributed op at
   [corrupt]. *)
let build_pair ?corrupt steps ~degree =
  let bs = B.create "fuzz-seq" in
  let x0 = B.input bs "x" [ sd batch; sd d_model ] in
  let ctx = Lower.create ~name:"fuzz-dist" ~degree () in
  let xs0 = Lower.shard_input ctx x0 ~dim:0 in
  let fresh = ref 0 in
  let corrupt_op idx op =
    match corrupt with
    | Some c when c = idx -> (
        (* Swap the activation function: a wrong-kernel bug. *)
        match op with
        | Op.Gelu -> Op.Silu
        | Op.Silu -> Op.Gelu
        | Op.Relu -> Op.Tanh
        | Op.Tanh -> Op.Relu
        | other -> other)
    | _ -> op
  in
  let seq = ref x0 and dist = ref xs0 in
  List.iteri
    (fun idx step ->
      incr fresh;
      let name what = Fmt.str "%s%d" what !fresh in
      match step with
      | Unary op ->
          seq := B.add bs op [ !seq ];
          dist :=
            List.map (fun x -> Lower.add ctx (corrupt_op idx op) [ x ]) !dist
      | Binary_fresh op ->
          let other = B.input bs (name "b") [ sd batch; sd d_model ] in
          let others = Lower.shard_input ctx other ~dim:0 in
          seq := B.add bs op [ !seq; other ];
          dist := List.map2 (fun x o -> Lower.add ctx op [ x; o ]) !dist others
      | Linear ->
          let w = B.input bs (name "w") [ sd d_model; sd d_model ] in
          let ws = Lower.replicate_input ctx w in
          seq := B.add bs Op.Matmul [ !seq; w ];
          dist :=
            List.mapi
              (fun r x -> Lower.add ctx Op.Matmul [ x; List.nth ws r ])
              !dist
      | Norm ->
          let w = B.input bs (name "nw") [ sd d_model ] in
          let bias = B.input bs (name "nb") [ sd d_model ] in
          let ws = Lower.replicate_input ctx w in
          let bsr = Lower.replicate_input ctx bias in
          seq := B.add bs (Op.Layernorm { eps = 1e-5 }) [ !seq; w; bias ];
          dist :=
            List.mapi
              (fun r x ->
                Lower.add ctx (Op.Layernorm { eps = 1e-5 })
                  [ x; List.nth ws r; List.nth bsr r ])
              !dist
      | Row_softmax ->
          seq := B.add bs (Op.Softmax { dim = 1 }) [ !seq ];
          dist := List.map (fun x -> Lower.add ctx (Op.Softmax { dim = 1 }) [ x ]) !dist)
    steps;
  B.output bs !seq;
  List.iter (Lower.output ctx) !dist;
  let gd, input_relation = Lower.finish ctx in
  (B.finish bs, gd, input_relation)

let has_swappable steps =
  List.exists
    (function
      | Unary (Op.Gelu | Op.Silu | Op.Relu | Op.Tanh) -> true | _ -> false)
    steps

let swappable_index steps =
  let rec go i = function
    | [] -> None
    | Unary (Op.Gelu | Op.Silu | Op.Relu | Op.Tanh) :: _ -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 steps

let positive =
  QCheck.Test.make ~name:"random sharded lowerings refine and replay"
    ~count:25 arbitrary_steps (fun steps ->
      let gs, gd, input_relation = build_pair steps ~degree:2 in
      match Entangle.Refine.check ~gs ~gd ~input_relation () with
      | Error f ->
          QCheck.Test.fail_reportf "rejected a correct lowering: %s"
            (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
      | Ok s -> (
          match
            Entangle.Certify.replay
              ~env:(Interp.env_of_list [])
              ~gs ~gd ~input_relation ~output_relation:s.output_relation ()
          with
          | Ok () -> true
          | Error e -> QCheck.Test.fail_reportf "replay failed: %s" e))

let positive_degree4 =
  QCheck.Test.make ~name:"random lowerings at degree 4" ~count:10
    arbitrary_steps (fun steps ->
      let gs, gd, input_relation = build_pair steps ~degree:4 in
      match Entangle.Refine.check ~gs ~gd ~input_relation () with
      | Ok _ -> true
      | Error f ->
          QCheck.Test.fail_reportf "rejected a correct lowering: %s"
            (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict))

let negative =
  QCheck.Test.make ~name:"corrupted kernels are rejected" ~count:25
    arbitrary_steps (fun steps ->
      QCheck.assume (has_swappable steps);
      let corrupt = Option.get (swappable_index steps) in
      let gs, gd, input_relation = build_pair ~corrupt steps ~degree:2 in
      match Entangle.Refine.check ~gs ~gd ~input_relation () with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_report "accepted a corrupted lowering")

(* Serialization fuzz: a random pair survives the text format and still
   verifies afterwards. *)
let roundtrip =
  QCheck.Test.make ~name:"random pairs survive serialization" ~count:10
    arbitrary_steps (fun steps ->
      let gs, gd, input_relation = build_pair steps ~degree:2 in
      let reload g =
        match Serial.graph_of_string (Serial.graph_to_string g) with
        | Ok g -> g
        | Error e -> QCheck.Test.fail_reportf "graph reload: %s" e
      in
      let gs = reload gs and gd = reload gd in
      match
        Entangle.Relation_io.of_string ~gs ~gd
          (Entangle.Relation_io.to_string input_relation)
      with
      | Error e -> QCheck.Test.fail_reportf "relation reload: %s" e
      | Ok input_relation -> (
          match Entangle.Refine.check ~gs ~gd ~input_relation () with
          | Ok _ -> true
          | Error f ->
              QCheck.Test.fail_reportf "reloaded pair rejected: %s"
                (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)))

(* Extraction soundness: whatever the checker extracts for an output
   evaluates to the same values as the sequential graph itself — checked
   independently of Certify by evaluating the full relation's entries on
   every sequential tensor, not only outputs. *)
let full_relation_sound =
  QCheck.Test.make ~name:"every relation entry is semantically faithful"
    ~count:10 arbitrary_steps (fun steps ->
      let gs, gd, input_relation = build_pair steps ~degree:2 in
      match Entangle.Refine.check ~gs ~gd ~input_relation () with
      | Error f -> QCheck.Test.fail_reportf "rejected: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
      | Ok s ->
          let env = Interp.env_of_list [] in
          let st = Random.State.make [| 5 |] in
          let gd_inputs = Interp.random_inputs st env gd in
          (* Replicated inputs (several leaf mappings for one sequential
             tensor) must hold equal values, as in Certify.replay. *)
          let gd_inputs =
            List.fold_left
              (fun inputs (_, exprs) ->
                let leaves =
                  List.filter_map
                    (function Expr.Leaf t -> Some t | _ -> None)
                    exprs
                in
                match leaves with
                | first :: rest ->
                    let v = List.assq first inputs in
                    List.map
                      (fun (t, old) ->
                        if List.exists (Tensor.equal t) rest then (t, v)
                        else (t, old))
                      inputs
                | [] -> inputs)
              gd_inputs
              (Entangle.Relation.bindings input_relation)
          in
          let lookup_in t = List.assq t gd_inputs in
          let gs_inputs =
            List.map
              (fun t ->
                match Entangle.Relation.find input_relation t with
                | e :: _ -> (t, Interp.eval_expr env lookup_in e)
                | [] -> QCheck.Test.fail_reportf "missing input mapping")
              (Graph.inputs gs)
          in
          let vs = Interp.run env gs ~inputs:gs_inputs in
          let vd = Interp.run env gd ~inputs:gd_inputs in
          let lookup_gd t = Tensor.Map.find t vd in
          List.for_all
            (fun (t, exprs) ->
              match Tensor.Map.find_opt t vs with
              | None -> true
              | Some expected ->
                  List.for_all
                    (fun e ->
                      Ndarray.approx_equal ~tol:1e-3 expected
                        (Interp.eval_expr env lookup_gd e))
                    exprs)
            (Entangle.Relation.bindings s.full_relation))

(* --- resilience fuzzing -------------------------------------------------- *)

module Failpoint = Entangle_failpoint.Failpoint

(* Fault-injection soak: random models from the zoo-like generator with
   a randomized failpoint armed anywhere in the pipeline. Whatever
   fires, the checker must return a structured verdict — an uncaught
   exception fails the property (QCheck reports it), and an [Internal]
   verdict must localize the failpoint that was armed. *)
let soak_points =
  [ "egraph.rebuild"; "egraph.ematch"; "egraph.extract"; "symbolic.decide" ]

let soak_gen =
  QCheck.Gen.(
    triple steps_gen (int_range 0 (List.length soak_points - 1))
      (int_range 1 40))

let arbitrary_soak =
  QCheck.make
    ~print:(fun (steps, fp, n) ->
      Fmt.str "%d steps, %s=nth:%d" (List.length steps)
        (List.nth soak_points fp) n)
    soak_gen

let failpoint_soak =
  QCheck.Test.make ~name:"injected faults yield structured verdicts"
    ~count:40 arbitrary_soak (fun (steps, fp, n) ->
      let point = List.nth soak_points fp in
      Failpoint.clear ();
      Failpoint.set point (Failpoint.Nth n);
      let gs, gd, input_relation = build_pair steps ~degree:2 in
      let result =
        try Ok (Entangle.Refine.check ~gs ~gd ~input_relation ())
        with e -> Error (Printexc.to_string e)
      in
      Failpoint.clear ();
      match result with
      | Error e ->
          QCheck.Test.fail_reportf "exception escaped Refine.check: %s" e
      | Ok (Ok _) -> true (* the failpoint never reached hit [n] *)
      | Ok (Error f) -> (
          match f.Entangle.Refine.verdict with
          | Entangle.Refine.Internal { failpoint = Some p; _ } ->
              p = point
              || QCheck.Test.fail_reportf "localized %s, armed %s" p point
          | Entangle.Refine.Internal { failpoint = None; exn; _ } ->
              QCheck.Test.fail_reportf
                "internal verdict lost the failpoint: %s" exn
          | _ ->
              (* Armed but never fired before a genuine verdict: the
                 verdict must then not be Internal. *)
              true))

(* Escalation can only fill in inconclusive verdicts, never flip a
   verdict the base configuration already reached: if the check
   succeeds (or provably fails) with the ladder disabled, it does the
   same with the default ladder. *)
let escalation_monotone =
  QCheck.Test.make ~name:"escalation never flips a reachable verdict"
    ~count:20 arbitrary_steps (fun steps ->
      let gs, gd, input_relation = build_pair steps ~degree:2 in
      let run escalation =
        let config =
          Entangle.Config.default
          |> Entangle.Config.with_escalation escalation
        in
        Entangle.Refine.check ~config ~gs ~gd ~input_relation ()
      in
      let relation_equal a b =
        let norm r =
          List.map
            (fun (t, es) ->
              ( Fmt.str "%a" Tensor.pp_name t,
                List.map (Fmt.str "%a" Expr.pp) es ))
            (Entangle.Relation.bindings r)
        in
        norm a = norm b
      in
      match (run [], run Entangle.Config.default_escalation) with
      | Ok base, Ok esc ->
          relation_equal base.Entangle.Refine.output_relation
            esc.Entangle.Refine.output_relation
          || QCheck.Test.fail_report
               "escalation changed a successful output relation"
      | Ok _, Error f ->
          QCheck.Test.fail_reportf "escalation flipped success to: %s"
            (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
      | Error { Entangle.Refine.verdict = Entangle.Refine.Unmapped _; _ },
        Error esc -> (
          match esc.Entangle.Refine.verdict with
          | Entangle.Refine.Unmapped _ -> true
          | v ->
              QCheck.Test.fail_reportf
                "escalation flipped a provable failure to: %s"
                (Entangle.Refine.verdict_to_string v))
      | Error _, _ -> true)

let suite =
  [
    ( "fuzz.differential",
      List.map QCheck_alcotest.to_alcotest
        [ positive; positive_degree4; negative; roundtrip; full_relation_sound ]
    );
    ( "fuzz.resilience",
      List.map QCheck_alcotest.to_alcotest
        [ failpoint_soak; escalation_monotone ] );
  ]

(* Silence unused-module warnings for shared helpers. *)
let _ = Instance.operator_count
