(* Tests for the tracing subsystem: the golden event shape of a small
   verification run, the Chrome trace-event emitter, the hand-rolled
   JSON parser behind `entangle trace-check`, and the property that
   observing a run through any sink never changes its outcome. *)

open Entangle_models
module Trace = Entangle_trace

let check = Alcotest.check

(* Run the checker on [inst] with a collecting sink, returning the
   events alongside the result. *)
let check_collecting inst =
  let c = Trace.Collect.create () in
  let config =
    Entangle.Config.default |> Entangle.Config.with_trace (Trace.Collect.sink c)
  in
  let result = Instance.check ~config inst in
  (result, Trace.Collect.events c)

(* Timestamp-free projection of an event stream: what the golden test
   pins down. *)
let shape events =
  List.map
    (fun (ev : Trace.Event.t) ->
      (Trace.Event.phase_letter ev.phase, ev.cat, ev.name))
    events

let pp_shape ppf (ph, cat, name) = Fmt.pf ppf "(%s, %s, %s)" ph cat name

let shape_t = Alcotest.(list (testable pp_shape ( = )))

let golden_tests =
  [
    Alcotest.test_case "regression model event stream is stable" `Quick
      (fun () ->
        let result, events = check_collecting (Regression.build ()) in
        (match result with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict));
        (* One span per operator; inside each: frontier loading with
           per-wave instants, the saturation iterations with rule hits
           and e-graph growth samples, a final e-graph sample, and the
           extraction phase. Timestamps and args are scrubbed; kinds
           and ordering are the contract. *)
        let expected =
          [
            ("B", "operator", "matmul");
            ("B", "phase", "frontier");
            ("i", "frontier", "frontier-wave");
            ("E", "phase", "frontier");
            ("B", "phase", "saturate");
            ("B", "iteration", "iteration");
            ("i", "rule", "rule-hit");
            ("C", "egraph", "egraph");
            ("E", "iteration", "iteration");
            ("B", "iteration", "iteration");
            ("C", "egraph", "egraph");
            ("E", "iteration", "iteration");
            ("E", "phase", "saturate");
            ("C", "egraph", "egraph");
            ("B", "phase", "extract");
            ("E", "phase", "extract");
            ("E", "operator", "matmul");
            ("B", "operator", "mse_loss");
            ("B", "phase", "frontier");
            ("i", "frontier", "frontier-wave");
            ("i", "frontier", "frontier-wave");
            ("i", "frontier", "frontier-wave");
            ("E", "phase", "frontier");
            ("B", "phase", "saturate");
            ("B", "iteration", "iteration");
            ("i", "rule", "rule-hit");
            ("i", "rule", "rule-hit");
            ("C", "egraph", "egraph");
            ("E", "iteration", "iteration");
            ("B", "iteration", "iteration");
            ("i", "rule", "rule-hit");
            ("i", "rule", "rule-hit");
            ("C", "egraph", "egraph");
            ("E", "iteration", "iteration");
            ("B", "iteration", "iteration");
            ("C", "egraph", "egraph");
            ("E", "iteration", "iteration");
            ("E", "phase", "saturate");
            ("C", "egraph", "egraph");
            ("B", "phase", "extract");
            ("E", "phase", "extract");
            ("E", "operator", "mse_loss");
          ]
        in
        check shape_t "event shape" expected (shape events));
    Alcotest.test_case "spans balance and timestamps are monotone" `Quick
      (fun () ->
        let _, events = check_collecting (Regression.build ~microbatches:4 ()) in
        let depth = ref 0 and last_ts = ref neg_infinity in
        List.iter
          (fun (ev : Trace.Event.t) ->
            check Alcotest.bool "timestamps monotone" true (ev.ts >= !last_ts);
            last_ts := ev.ts;
            match ev.phase with
            | Trace.Event.Begin -> incr depth
            | Trace.Event.End ->
                decr depth;
                check Alcotest.bool "no unmatched end" true (!depth >= 0)
            | _ -> ())
          events;
        check Alcotest.int "all spans closed" 0 !depth);
  ]

let stats_tests =
  [
    Alcotest.test_case "stats are a fold of the trace events" `Quick (fun () ->
        let result, events = check_collecting (Regression.build ()) in
        let stats =
          match result with
          | Ok s -> s.Entangle.Refine.stats
          | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        in
        let replayed = Entangle.Refine.stats_of_events events in
        check Alcotest.bool "identical modulo wall time" true
          ({ stats with Entangle.Refine.wall_time_s = 0. } = replayed));
    Alcotest.test_case "profile agrees with stats" `Quick (fun () ->
        let result, events = check_collecting (Gpt.build ()) in
        let stats =
          match result with
          | Ok s -> s.Entangle.Refine.stats
          | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        in
        let p = Trace.Profile.of_events events in
        check Alcotest.int "iterations" stats.saturation_iterations
          p.Trace.Profile.iterations;
        check Alcotest.int "matches" stats.matches_examined
          p.Trace.Profile.matches;
        check Alcotest.int "unions" stats.unions_applied p.Trace.Profile.unions;
        check Alcotest.int "nodes peak" stats.egraph_nodes_peak
          p.Trace.Profile.nodes_peak;
        check Alcotest.int "operator rows" stats.operators_processed
          (List.fold_left
             (fun acc (r : Trace.Profile.row) -> acc + r.count)
             0 p.Trace.Profile.operators));
  ]

let chrome_tests =
  [
    Alcotest.test_case "emitted trace validates" `Quick (fun () ->
        let _, events = check_collecting (Regression.build ()) in
        let text = Trace.Chrome.to_string events in
        match Trace.Chrome.validate text with
        | Ok n -> check Alcotest.int "event count" (List.length events) n
        | Error e -> Alcotest.failf "invalid trace: %s" e);
    Alcotest.test_case "validation rejects garbage" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Trace.Chrome.validate bad with
            | Ok _ -> Alcotest.failf "accepted %S" bad
            | Error _ -> ())
          [
            "";
            "{}";
            "[{\"name\": 3}]";
            (* balanced JSON but no required categories *)
            "[{\"name\": \"x\", \"cat\": \"c\", \"ph\": \"i\", \"ts\": 0}]";
          ]);
    Alcotest.test_case "streaming and batch emitters agree" `Quick (fun () ->
        let _, events = check_collecting (Regression.build ()) in
        let path = Filename.temp_file "entangle-trace" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            let ch = Trace.Chrome.create oc in
            List.iter (Trace.Sink.emit (Trace.Chrome.sink ch)) events;
            Trace.Chrome.close ch;
            close_out oc;
            let ic = open_in path in
            let n = in_channel_length ic in
            let streamed = really_input_string ic n in
            close_in ic;
            match Trace.Chrome.validate streamed with
            | Ok n -> check Alcotest.int "event count" (List.length events) n
            | Error e -> Alcotest.failf "invalid streamed trace: %s" e));
  ]

let json_tests =
  let parses s =
    match Trace.Json.parse s with Ok _ -> true | Error _ -> false
  in
  [
    Alcotest.test_case "parser accepts valid documents" `Quick (fun () ->
        List.iter
          (fun s -> check Alcotest.bool s true (parses s))
          [
            "null"; "true"; "-12"; "3.5e2"; "\"a\\\"b\\n\""; "[]";
            "[1, [2, {}]]"; "{\"k\": [true, null]}"; "  { \"a\" : 1 }  ";
          ]);
    Alcotest.test_case "parser rejects invalid documents" `Quick (fun () ->
        List.iter
          (fun s -> check Alcotest.bool s false (parses s))
          [
            ""; "["; "[1,]"; "{\"a\" 1}"; "{'a': 1}"; "nul"; "1 2";
            "\"unterminated"; "{\"a\": }";
          ]);
    Alcotest.test_case "member projects object fields" `Quick (fun () ->
        match Trace.Json.parse "{\"a\": 1, \"b\": \"x\"}" with
        | Error e -> Alcotest.fail e
        | Ok v -> (
            (match Trace.Json.member "b" v with
            | Some (Trace.Json.Str s) -> check Alcotest.string "b" "x" s
            | _ -> Alcotest.fail "expected Str");
            match Trace.Json.member "missing" v with
            | None -> ()
            | Some _ -> Alcotest.fail "expected None"));
  ]

(* Observing a run through any sink must not change what the checker
   computes: verdict and stats identical whether the trace goes
   nowhere, to memory, or to a Chrome file. *)
let property_tests =
  (* Project a result to plain data (verdict marker + stats sans wall
     time) so structural equality is meaningful. *)
  let scrub = function
    | Ok (s : Entangle.Refine.success) ->
        ("ok", { s.stats with Entangle.Refine.wall_time_s = 0. })
    | Error (f : Entangle.Refine.failure) ->
        ((Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict), { f.stats with Entangle.Refine.wall_time_s = 0. })
  in
  let sink_transparent =
    QCheck2.Test.make ~count:12 ~name:"sinks never change verdict or stats"
      (* microbatches must divide the model's batch size of 8 *)
      QCheck2.Gen.(pair (oneofl [ 1; 2; 4; 8 ]) bool)
      (fun (microbatches, buggy) ->
        let build () = Regression.build ~microbatches ~buggy () in
        let with_sink sink =
          let config =
            Entangle.Config.default |> Entangle.Config.with_trace sink
          in
          scrub (Instance.check ~config (build ()))
        in
        let baseline = with_sink Trace.Sink.null in
        let collected = with_sink (Trace.Collect.sink (Trace.Collect.create ())) in
        let path = Filename.temp_file "entangle-prop" ".json" in
        let chromed =
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let oc = open_out path in
              let ch = Trace.Chrome.create oc in
              let r = with_sink (Trace.Chrome.sink ch) in
              Trace.Chrome.close ch;
              close_out oc;
              r)
        in
        baseline = collected && baseline = chromed)
  in
  [ QCheck_alcotest.to_alcotest sink_transparent ]

let suite =
  [
    ("trace.golden", golden_tests);
    ("trace.stats", stats_tests);
    ("trace.chrome", chrome_tests);
    ("trace.json", json_tests);
    ("trace.property", property_tests);
  ]
