(* Tests for the user-facing surfaces: failure/success reports, the
   Graphviz export, per-lemma hit counters (the Figure 6 data source),
   and the configuration ablations. *)

open Entangle_ir
open Entangle_models

let check = Alcotest.check

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let report_tests =
  [
    Alcotest.test_case "failure report names the operator and inputs" `Quick
      (fun () ->
        let inst = Regression.build ~buggy:true () in
        match Instance.check inst with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error f ->
            let text = Entangle.Report.failure_to_string inst.Instance.gs f in
            check Alcotest.bool "names mse_loss" true (contains text "mse_loss");
            check Alcotest.bool "shows input relations" true
              (contains text "Input relations");
            check Alcotest.bool "shows upstream operators" true
              (contains text "Upstream operators");
            check Alcotest.bool "pred relation present" true
              (contains text "pred ->"));
    Alcotest.test_case "success report shows the output relation" `Quick
      (fun () ->
        let inst = Regression.build () in
        match Instance.check inst with
        | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        | Ok s ->
            let text = Entangle.Report.success_to_string inst.Instance.gs s in
            check Alcotest.bool "mentions R_o" true
              (contains text "Clean output relation");
            check Alcotest.bool "maps loss" true
              (contains text "loss -> accumulated_loss"));
    Alcotest.test_case "hit counters aggregate per lemma" `Quick (fun () ->
        let inst = Gpt.build () in
        let hits =
          match Instance.check inst with
          | Ok s -> s.Entangle.Refine.stats.rule_hits
          | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        in
        let count name = Option.value (List.assoc_opt name hits) ~default:0 in
        check Alcotest.bool "collective lemma used" true
          (count "all-gather-is-concat" > 0);
        check Alcotest.bool "matmul split used" true
          (count "matmul-col-split" > 0);
        (* Every counted name is a registered lemma (Figure 6's x-axis). *)
        List.iter
          (fun (name, _) ->
            check Alcotest.bool name true
              (Entangle_lemmas.Registry.find name <> None))
          hits);
    Alcotest.test_case "stats in the result reflect the run" `Quick (fun () ->
        let inst = Regression.build () in
        match Instance.check inst with
        | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        | Ok s ->
            check Alcotest.int "operators" 2 s.stats.operators_processed;
            check Alcotest.bool "wall time recorded" true
              (s.stats.wall_time_s >= 0.));
  ]

let dot_tests =
  [
    Alcotest.test_case "dot export covers nodes and edges" `Quick (fun () ->
        let inst = Regression.build () in
        let dot = Dot.to_dot inst.Instance.gs in
        check Alcotest.bool "digraph" true (contains dot "digraph");
        check Alcotest.bool "matmul box" true (contains dot "matmul");
        check Alcotest.bool "input ellipse" true (contains dot "shape=ellipse");
        check Alcotest.bool "edge with shape label" true (contains dot "[8, 4]");
        check Alcotest.bool "output marker" true (contains dot "doublecircle"));
    Alcotest.test_case "highlight marks the failing operator" `Quick (fun () ->
        let inst = Regression.build ~buggy:true () in
        match Instance.check inst with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error f ->
            let dot =
              Dot.to_dot ~highlight:[ Node.output f.operator ] inst.Instance.gs
            in
            check Alcotest.bool "highlight color" true (contains dot "#f4cccc"));
  ]

let config_tests =
  [
    Alcotest.test_case "ablation configs all verify GPT" `Slow (fun () ->
        List.iter
          (fun config ->
            let inst = Gpt.build ~sp:false ~vp:false () in
            match Instance.check ~config inst with
            | Ok _ -> ()
            | Error f -> Alcotest.failf "config failed: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict))
          [ Entangle.Config.default; Entangle.Config.no_frontier;
            Entangle.Config.no_pruning ]);
    Alcotest.test_case "no_frontier explores more of the graph" `Quick
      (fun () ->
        let peak config =
          let inst = Regression.build ~microbatches:4 () in
          match Instance.check ~config inst with
          | Ok s -> s.stats.egraph_nodes_peak
          | Error f -> Alcotest.failf "failed: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        in
        check Alcotest.bool "frontier shrinks e-graphs" true
          (peak Entangle.Config.default <= peak Entangle.Config.no_frontier));
  ]

let gqa_tests =
  [
    Alcotest.test_case "grouped-query attention verifies" `Quick (fun () ->
        let arch =
          { (Transformer.llama_arch ~heads:4 ()) with
            Transformer.kv_heads = 2 }
        in
        let inst =
          Transformer.build ~arch ~layers:1 ~degree:2 ~name:"GQA"
            ~family:Entangle_lemmas.Registry.Llama ()
        in
        match Instance.check inst with
        | Ok _ -> ()
        | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict));
    Alcotest.test_case "kv_heads must divide heads" `Quick (fun () ->
        let arch =
          { (Transformer.gpt_arch ~heads:4 ~vocab:None ()) with
            Transformer.kv_heads = 3 }
        in
        check Alcotest.bool "raises" true
          (try
             ignore
               (Transformer.build ~arch ~layers:1 ~degree:2 ~name:"bad"
                  ~family:Entangle_lemmas.Registry.Gpt ());
             false
           with Invalid_argument _ -> true));
  ]

let suite =
  [
    ("report.text", report_tests);
    ("report.dot", dot_tests);
    ("report.config", config_tests);
    ("report.gqa", gqa_tests);
  ]
