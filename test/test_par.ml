(* Tests for the parallel checker: the work-stealing deque and domain
   pool primitives, the cone-disjoint wavefront scheduling properties,
   and end-to-end [-j 1] vs [-j N] agreement on the model zoo and the
   nine case-study bugs. *)

open Entangle_ir
open Entangle_models
module Deque = Entangle_par.Deque
module Pool = Entangle_par.Pool
module Wavefront = Entangle.Wavefront
module Refine = Entangle.Refine

let check = Alcotest.check
let op_name n = Op.name (Node.op n)

(* --- deque --------------------------------------------------------------- *)

let deque_tests =
  [
    Alcotest.test_case "owner pops LIFO" `Quick (fun () ->
        let d = Deque.create () in
        List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ];
        let popped = List.init 5 (fun _ -> Option.get (Deque.pop d)) in
        check (Alcotest.list Alcotest.int) "LIFO" [ 5; 4; 3; 2; 1 ] popped;
        check Alcotest.bool "then empty" true (Deque.pop d = None));
    Alcotest.test_case "thieves steal FIFO" `Quick (fun () ->
        let d = Deque.create () in
        List.iter (Deque.push d) [ 1; 2; 3 ];
        let stolen () =
          match Deque.steal d with
          | `Stolen x -> x
          | `Empty | `Retry -> Alcotest.fail "steal came back empty"
        in
        check Alcotest.int "oldest first" 1 (stolen ());
        check Alcotest.int "then next" 2 (stolen ());
        check Alcotest.int "owner gets the rest" 3
          (Option.get (Deque.pop d));
        check Alcotest.bool "steal on empty" true (Deque.steal d = `Empty));
    Alcotest.test_case "growth past initial capacity" `Quick (fun () ->
        let d = Deque.create ~capacity:2 () in
        let n = 1000 in
        for i = 1 to n do
          Deque.push d i
        done;
        check Alcotest.int "size" n (Deque.size d);
        let sum = ref 0 in
        let rec drain () =
          match Deque.pop d with
          | Some x ->
              sum := !sum + x;
              drain ()
          | None -> ()
        in
        drain ();
        check Alcotest.int "conserved" (n * (n + 1) / 2) !sum);
    Alcotest.test_case "concurrent steal conserves elements" `Quick
      (fun () ->
        (* One owner pushing and popping, two thief domains stealing
           throughout: every pushed element must be taken exactly once,
           by exactly one participant. *)
        let d = Deque.create () in
        let n = 20_000 in
        let stop = Atomic.make false in
        let thief () =
          Domain.spawn (fun () ->
              let acc = ref [] in
              let rec drain () =
                match Deque.steal d with
                | `Stolen x ->
                    acc := x :: !acc;
                    drain ()
                | `Retry -> drain ()
                | `Empty -> ()
              in
              while not (Atomic.get stop) do
                (match Deque.steal d with
                | `Stolen x -> acc := x :: !acc
                | `Empty | `Retry -> Domain.cpu_relax ());
                ()
              done;
              drain ();
              !acc)
        in
        let t1 = thief () and t2 = thief () in
        let popped = ref [] in
        for i = 1 to n do
          Deque.push d i;
          if i mod 3 = 0 then
            match Deque.pop d with
            | Some x -> popped := x :: !popped
            | None -> ()
        done;
        Atomic.set stop true;
        let stolen = Domain.join t1 @ Domain.join t2 in
        let rec drain () =
          match Deque.pop d with
          | Some x ->
              popped := x :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        let all = List.sort compare (stolen @ !popped) in
        check Alcotest.int "count" n (List.length all);
        check Alcotest.bool "each element exactly once" true
          (List.for_all2 ( = ) all (List.init n (fun i -> i + 1))));
  ]

(* --- pool ---------------------------------------------------------------- *)

let pool_tests =
  [
    Alcotest.test_case "results are positional" `Quick (fun () ->
        Pool.with_pool ~size:4 (fun pool ->
            let r = Pool.run pool (fun i -> i * i) 20 in
            check
              (Alcotest.array Alcotest.int)
              "squares"
              (Array.init 20 (fun i -> i * i))
              r));
    Alcotest.test_case "batch larger than the pool" `Quick (fun () ->
        Pool.with_pool ~size:2 (fun pool ->
            let r = Pool.run pool (fun i -> i + 1) 100 in
            check Alcotest.int "all ran"
              (100 * 101 / 2)
              (Array.fold_left ( + ) 0 r)));
    Alcotest.test_case "pool is reusable across batches" `Quick (fun () ->
        Pool.with_pool ~size:3 (fun pool ->
            let a = Pool.run pool (fun i -> i) 7 in
            let b = Pool.run pool (fun i -> -i) 11 in
            let c = Pool.run pool (fun _ -> 0) 0 in
            check Alcotest.int "first" 21 (Array.fold_left ( + ) 0 a);
            check Alcotest.int "second" (-55) (Array.fold_left ( + ) 0 b);
            check Alcotest.int "empty batch" 0 (Array.length c)));
    Alcotest.test_case "lowest-indexed exception wins" `Quick (fun () ->
        Pool.with_pool ~size:4 (fun pool ->
            match
              Pool.run pool
                (fun i ->
                  if i mod 4 = 3 then failwith (string_of_int i) else i)
                16
            with
            | _ -> Alcotest.fail "expected a raise"
            | exception Failure msg ->
                check Alcotest.string "first failing index" "3" msg));
    Alcotest.test_case "size clamps below at 1" `Quick (fun () ->
        Pool.with_pool ~size:0 (fun pool ->
            check Alcotest.int "size" 1 (Pool.size pool);
            let r = Pool.run pool (fun i -> i * 2) 5 in
            check Alcotest.int "still runs" 20 (Array.fold_left ( + ) 0 r)));
  ]

(* --- wavefront scheduling properties ------------------------------------- *)

(* A committed relation that covers every sequential tensor, so cones
   can be computed for any operator regardless of schedule position:
   the full relation of a successful sequential check. *)
let gpt_instance =
  lazy
    (match Zoo.by_name "gpt" with
    | Some i -> i
    | None -> Alcotest.fail "zoo lost the gpt instance")

let gpt_full_relation =
  lazy
    (match Instance.check (Lazy.force gpt_instance) with
    | Ok s -> s.Refine.full_relation
    | Error f -> Alcotest.failf "gpt check failed: %s" (Refine.verdict_to_string f.Refine.verdict))

let gpt_wavefront =
  lazy
    (let inst = Lazy.force gpt_instance in
     Wavefront.create ~gs:inst.Instance.gs ~gd:inst.Instance.gd
       ~whole_graph:false)

(* Re-derive both independence conditions without trusting the
   scheduler's own predicates: cones as sorted id lists intersected
   manually, ordering via [depends] (itself a plain DFS over the
   sequential graph). *)
let assert_batch_independent wf cones batch =
  let ids i = Wavefront.cone_ids (List.assoc i cones) in
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  List.iteri
    (fun k i ->
      List.iteri
        (fun k' j ->
          if k < k' then begin
            if Wavefront.depends wf i j || Wavefront.depends wf j i then
              Alcotest.failf
                "batch co-scheduled dependent operators %d and %d" i j;
            if intersects (ids i) (ids j) then
              Alcotest.failf
                "batch co-scheduled intersecting cones of %d and %d" i j
          end)
        batch)
    batch

let wavefront_tests =
  [
    Alcotest.test_case "full schedule: batches are cone-disjoint antichains"
      `Quick (fun () ->
        let wf = Lazy.force gpt_wavefront in
        let rel = Lazy.force gpt_full_relation in
        let ops = Wavefront.ops wf in
        let n = Array.length ops in
        let committed = Array.make n false in
        let started = Array.make n false in
        let waves = ref 0 and widest = ref 0 in
        while Array.exists not committed do
          let ready = Wavefront.ready wf ~committed ~started in
          check Alcotest.bool "ready set nonempty while work remains" true
            (ready <> []);
          let cones =
            List.map (fun i -> (i, Wavefront.cone wf ~relation:rel i)) ready
          in
          let batch, deferred = Wavefront.batch cones in
          check Alcotest.bool "batch nonempty" true (batch <> []);
          check Alcotest.int "batch + deferred = ready" (List.length ready)
            (List.length batch + List.length deferred);
          assert_batch_independent wf cones batch;
          List.iter
            (fun i ->
              started.(i) <- true;
              committed.(i) <- true)
            batch;
          incr waves;
          widest := max !widest (List.length batch)
        done;
        check Alcotest.bool "some wave actually ran operators in parallel"
          true (!widest >= 2);
        check Alcotest.bool "scheduling beat fully sequential" true
          (!waves < n));
    Alcotest.test_case "whole-graph cones degrade to singleton batches"
      `Quick (fun () ->
        let inst = Lazy.force gpt_instance in
        let wf =
          Wavefront.create ~gs:inst.Instance.gs ~gd:inst.Instance.gd
            ~whole_graph:true
        in
        let rel = Lazy.force gpt_full_relation in
        let n = Array.length (Wavefront.ops wf) in
        let committed = Array.make n false in
        let started = Array.make n false in
        let ready = Wavefront.ready wf ~committed ~started in
        let cones =
          List.map (fun i -> (i, Wavefront.cone wf ~relation:rel i)) ready
        in
        let batch, _ = Wavefront.batch cones in
        check Alcotest.int "one operator per wave" 1 (List.length batch));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "random dependency-closed prefixes never batch intersecting or \
            ordered operators"
         ~count:40
         QCheck.(pair small_int small_int)
         (fun (prefix_seed, shuffle_seed) ->
           let wf = Lazy.force gpt_wavefront in
           let rel = Lazy.force gpt_full_relation in
           let ops = Wavefront.ops wf in
           let n = Array.length ops in
           (* A random dependency-closed committed set: walking in
              topological order, an operator may commit only once every
              producer of its inputs has. *)
           let rng = Random.State.make [| prefix_seed |] in
           let committed = Array.make n false in
           let by_output = Hashtbl.create 64 in
           Array.iteri
             (fun i v -> Hashtbl.replace by_output (Node.output v) i)
             ops;
           Array.iteri
             (fun i v ->
               let producers_done =
                 List.for_all
                   (fun t ->
                     match Hashtbl.find_opt by_output t with
                     | Some p -> committed.(p)
                     | None -> true)
                   (Node.inputs v)
               in
               if producers_done && Random.State.bool rng then
                 committed.(i) <- true)
             ops;
           let started = Array.copy committed in
           let ready = Wavefront.ready wf ~committed ~started in
           (* [batch] must be safe whatever order candidates arrive in. *)
           let shuffled =
             let rng = Random.State.make [| shuffle_seed |] in
             List.map (fun i -> (Random.State.bits rng, i)) ready
             |> List.sort compare |> List.map snd
           in
           let cones =
             List.map
               (fun i -> (i, Wavefront.cone wf ~relation:rel i))
               shuffled
           in
           let batch, deferred = Wavefront.batch cones in
           assert_batch_independent wf cones batch;
           if ready <> [] && batch = [] then
             QCheck.Test.fail_report "batch empty on nonempty ready set";
           List.length batch + List.length deferred = List.length ready));
  ]

(* --- end-to-end -j 1 / -j N agreement ------------------------------------ *)

let render_relation r = Fmt.str "%a" Entangle.Relation.pp r
let strip_time (s : Refine.stats) = { s with wall_time_s = 0. }

let config jobs extra =
  extra (Entangle.Config.default |> Entangle.Config.with_jobs jobs)

let check_success_equal name (a : Refine.success) (b : Refine.success) =
  check Alcotest.string
    (name ^ ": output relation")
    (render_relation a.output_relation)
    (render_relation b.output_relation);
  check Alcotest.string
    (name ^ ": full relation")
    (render_relation a.full_relation)
    (render_relation b.full_relation);
  check Alcotest.bool
    (name ^ ": stats identical modulo wall time")
    true
    (strip_time a.stats = strip_time b.stats)

let check_failure_equal name (a : Refine.failure) (b : Refine.failure) =
  check Alcotest.string (name ^ ": operator") (op_name a.operator)
    (op_name b.operator);
  check Alcotest.string (name ^ ": verdict")
    (Refine.verdict_to_string a.verdict)
    (Refine.verdict_to_string b.verdict);
  check
    (Alcotest.list Alcotest.string)
    (name ^ ": fault operators")
    (List.map (fun f -> op_name f.Refine.fault_operator) a.faults)
    (List.map (fun f -> op_name f.Refine.fault_operator) b.faults);
  check
    (Alcotest.list Alcotest.string)
    (name ^ ": fault verdicts")
    (List.map (fun f -> Refine.verdict_to_string f.Refine.fault_verdict) a.faults)
    (List.map (fun f -> Refine.verdict_to_string f.Refine.fault_verdict) b.faults);
  check
    (Alcotest.list Alcotest.string)
    (name ^ ": dependents skipped")
    (List.map op_name a.dependents_skipped)
    (List.map op_name b.dependents_skipped);
  check Alcotest.string
    (name ^ ": partial relation")
    (render_relation a.partial_relation)
    (render_relation b.partial_relation);
  check Alcotest.bool
    (name ^ ": stats identical modulo wall time")
    true
    (strip_time a.stats = strip_time b.stats)

let agreement_tests =
  [
    Alcotest.test_case "zoo verdicts and relations agree across -j" `Slow
      (fun () ->
        List.iter
          (fun inst ->
            let run jobs =
              Instance.check ~config:(config jobs Fun.id) inst
            in
            match (run 1, run 4) with
            | Ok a, Ok b -> check_success_equal inst.Instance.name a b
            | Error a, Error b -> check_failure_equal inst.Instance.name a b
            | Ok _, Error f ->
                Alcotest.failf "%s: -j 4 failed where -j 1 succeeded: %s"
                  inst.Instance.name (Refine.verdict_to_string f.Refine.verdict)
            | Error f, Ok _ ->
                Alcotest.failf "%s: -j 1 failed where -j 4 succeeded: %s"
                  inst.Instance.name (Refine.verdict_to_string f.Refine.verdict))
          (Zoo.fig3_instances ()));
    Alcotest.test_case "all nine bug verdicts agree across -j" `Slow
      (fun () ->
        List.iter
          (fun (case : Bugs.case) ->
            let name = Fmt.str "bug %d" case.id in
            let mask_time s =
              (* Reports end with a stats suffix whose only wall-clock
                 text is a float directly followed by 's'. *)
              let b = Buffer.create (String.length s) in
              let n = String.length s in
              let i = ref 0 in
              while !i < n do
                let j = ref !i in
                while
                  !j < n
                  && (match s.[!j] with '0' .. '9' | '.' -> true | _ -> false)
                do
                  incr j
                done;
                if !j > !i && !j < n && s.[!j] = 's' then begin
                  Buffer.add_string b "#s";
                  i := !j + 1
                end
                else begin
                  Buffer.add_char b s.[!i];
                  incr i
                end
              done;
              Buffer.contents b
            in
            match
              ( Bugs.run ~config:(config 1 Fun.id) case,
                Bugs.run ~config:(config 4 Fun.id) case )
            with
            | Bugs.Detected a, Bugs.Detected b ->
                check Alcotest.string
                  (name ^ ": report")
                  (mask_time a) (mask_time b)
            | Bugs.Missed, Bugs.Missed -> ()
            | Bugs.Detected _, Bugs.Missed ->
                Alcotest.failf "%s: missed at -j 4 only" name
            | Bugs.Missed, Bugs.Detected _ ->
                Alcotest.failf "%s: missed at -j 1 only" name)
          (Bugs.all ()));
    Alcotest.test_case "cache stores identical entries across -j" `Slow
      (fun () ->
        (* Cold-populate one fresh store per job count; the stores are
           content-addressed, so identical entry-file sets mean the
           parallel run looked up and wrote exactly the keys the
           sequential run did. *)
        let rec rm_rf path =
          match Sys.is_directory path with
          | true ->
              Array.iter
                (fun e -> rm_rf (Filename.concat path e))
                (Sys.readdir path);
              Sys.rmdir path
          | false -> Sys.remove path
          | exception Sys_error _ -> ()
        in
        let rec entries acc rel path =
          if Sys.is_directory path then
            Array.fold_left
              (fun acc e ->
                entries acc
                  (if rel = "" then e else Filename.concat rel e)
                  (Filename.concat path e))
              acc (Sys.readdir path)
          else rel :: acc
        in
        let inst = Lazy.force gpt_instance in
        let populate jobs =
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Fmt.str "entangle-par-cache.%d.%d" (Unix.getpid ()) jobs)
          in
          rm_rf dir;
          Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
          match Entangle_cache.Cache.create ~dir () with
          | Error e -> Alcotest.failf "cannot open temp cache: %s" e
          | Ok cache -> (
              let cfg =
                config jobs (Entangle.Config.with_cache (Some cache))
              in
              match Instance.check ~config:cfg inst with
              | Error f -> Alcotest.failf "check failed: %s" (Refine.verdict_to_string f.Refine.verdict)
              | Ok s ->
                  ( List.sort compare (entries [] "" dir),
                    List.map
                      (fun (v, p) ->
                        ( op_name v,
                          match p with
                          | Entangle_cache.Cache.Hit -> "hit"
                          | Entangle_cache.Cache.Miss -> "miss"
                          | Entangle_cache.Cache.Replay_failed _ -> "replay" ))
                      s.Refine.cache_provenance ))
        in
        let files1, prov1 = populate 1 in
        let files4, prov4 = populate 4 in
        check
          (Alcotest.list Alcotest.string)
          "store entry files" files1 files4;
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "provenance sequence" prov1 prov4);
    Alcotest.test_case "keep-going fault sets agree across -j" `Slow
      (fun () ->
        let inst = (Bugs.case 3).Bugs.instance in
        let run jobs =
          Instance.check
            ~config:(config jobs (Entangle.Config.with_keep_going true))
            inst
        in
        match (run 1, run 4) with
        | Error a, Error b -> check_failure_equal "bug 3 keep-going" a b
        | _ -> Alcotest.fail "expected a failure on the buggy lowering");
  ]

let suite =
  [
    ("par.deque", deque_tests);
    ("par.pool", pool_tests);
    ("par.wavefront", wavefront_tests);
    ("par.agreement", agreement_tests);
  ]
