(* Tests for reverse-mode differentiation: backward graphs are checked
   against finite-difference numerical gradients through the reference
   interpreter, and the training-step models (data parallelism, pipeline
   microbatching, tensor-parallel backward) are verified end to end. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_models
module B = Graph.Builder

let check = Alcotest.check
let sd = Symdim.of_int
let env = Interp.env_of_list []

(* Run a forward graph and its autodiff backward graph, returning the
   gradient of (sum of all outputs weighted by the seeds) with respect
   to [target]. *)
let autodiff_grad fwd (outcome : Autodiff.outcome) ~inputs ~seeds ~target =
  let fwd_vals = Interp.run env fwd ~inputs in
  let bwd_inputs =
    List.map
      (fun t ->
        let name = Tensor.name t in
        match
          List.find_opt (fun (_, m) -> Tensor.equal m t) outcome.mirror_of
        with
        | Some (fwd_t, _) -> (t, Tensor.Map.find fwd_t fwd_vals)
        | None -> (
            match
              List.find_opt (fun (_, s) -> Tensor.equal s t) outcome.seed_of
            with
            | Some (fwd_out, _) ->
                (t, List.assq fwd_out seeds)
            | None -> Alcotest.failf "unbound backward input %s" name))
      (Graph.inputs outcome.graph)
  in
  let bwd_vals = Interp.run env outcome.graph ~inputs:bwd_inputs in
  let _, grad_out =
    List.find (fun (t, _) -> Tensor.equal t target) outcome.grad_of
  in
  Tensor.Map.find grad_out bwd_vals

(* Central finite differences of (sum of seeded outputs) wrt [target]. *)
let numeric_grad fwd ~inputs ~seeds ~target =
  let h = 1e-4 in
  let base_dims =
    Ndarray.dims (List.assq target (List.map (fun (t, v) -> (t, v)) inputs))
  in
  let objective inputs =
    let vals = Interp.run env fwd ~inputs in
    List.fold_left
      (fun acc (out, seed) ->
        let v = Tensor.Map.find out vals in
        let weighted = Ndarray.mul v seed in
        acc
        +. List.fold_left ( +. ) 0. (Ndarray.to_flat_list weighted))
      0. seeds
  in
  let grad = Ndarray.create base_dims 0. in
  let original = List.assq target inputs in
  let n = Ndarray.numel original in
  let flat = Array.of_list (Ndarray.to_flat_list original) in
  for i = 0 to n - 1 do
    let perturbed delta =
      let data = Array.copy flat in
      data.(i) <- data.(i) +. delta;
      let nd = Ndarray.of_list base_dims (Array.to_list data) in
      List.map (fun (t, v) -> if Tensor.equal t target then (t, nd) else (t, v)) inputs
    in
    let plus = objective (perturbed h) and minus = objective (perturbed (-.h)) in
    let g = (plus -. minus) /. (2. *. h) in
    let idx =
      (* unflatten i *)
      let rec go i dims acc =
        match dims with
        | [] -> List.rev acc
        | _ :: rest ->
            let stride = List.fold_left ( * ) 1 rest in
            go (i mod stride) rest ((i / stride) :: acc)
      in
      go i base_dims []
    in
    Ndarray.set grad idx g
  done;
  grad

let grad_check_case name build_fwd =
  Alcotest.test_case name `Quick (fun () ->
      let fwd, wrt = build_fwd () in
      match Autodiff.backward fwd ~wrt with
      | Error e -> Alcotest.fail e
      | Ok outcome ->
          let st = Random.State.make [| 11 |] in
          let inputs = Interp.random_inputs st env fwd in
          let seeds =
            List.map
              (fun o ->
                ( o,
                  Ndarray.random st
                    (Shape.concrete (Interp.lookup env) (Tensor.shape o)) ))
              (Graph.outputs fwd)
          in
          List.iter
            (fun target ->
              let symbolic =
                autodiff_grad fwd outcome ~inputs ~seeds ~target
              in
              let numeric = numeric_grad fwd ~inputs ~seeds ~target in
              if not (Ndarray.approx_equal ~tol:5e-3 symbolic numeric) then
                Alcotest.failf "%s: gradient of %s differs by %g" name
                  (Tensor.name target)
                  (Ndarray.max_abs_diff symbolic numeric))
            wrt)

let gradient_tests =
  [
    grad_check_case "matmul gradients" (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 3; sd 4 ] in
        let w = B.input b "w" [ sd 4; sd 2 ] in
        B.output b (B.add b Op.Matmul [ x; w ]);
        (B.finish b, [ x; w ]));
    grad_check_case "elementwise chain" (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 3; sd 3 ] in
        let y = B.input b "y" [ sd 3; sd 3 ] in
        let z = B.add b Op.Mul [ B.add b Op.Sub [ x; y ]; x ] in
        B.output b (B.add b Op.Square [ z ]);
        (B.finish b, [ x; y ]));
    grad_check_case "silu and sigmoid" (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 2; sd 5 ] in
        B.output b (B.add b Op.Silu [ x ]);
        B.output b (B.add b Op.Sigmoid [ x ]);
        (B.finish b, [ x ]));
    grad_check_case "concat and slice" (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 2; sd 3 ] in
        let y = B.input b "y" [ sd 2; sd 3 ] in
        let c = B.add b (Op.Concat { dim = 0 }) [ x; y ] in
        B.output b
          (B.add b (Op.Slice { dim = 0; start = sd 1; stop = sd 3 }) [ c ]);
        (B.finish b, [ x; y ]));
    grad_check_case "scale, neg, sum, transpose" (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 3; sd 2 ] in
        let t = B.add b (Op.Transpose { dim0 = 0; dim1 = 1 }) [ x ] in
        let s = B.add b (Op.Scale (Rat.make 3 2)) [ t ] in
        B.output b (B.add b Op.Sum_n [ s; B.add b Op.Neg [ s ]; s ]);
        (B.finish b, [ x ]));
    grad_check_case "mse loss" (fun () ->
        let b = B.create "f" in
        let p = B.input b "p" [ sd 4; sd 2 ] in
        let t = B.input b "t" [ sd 4; sd 2 ] in
        B.output b (B.add b Op.Mse_loss [ p; t ]);
        (B.finish b, [ p; t ]));
    Alcotest.test_case "unsupported operators are reported" `Quick (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 2; sd 4 ] in
        B.output b (B.add b (Op.Softmax { dim = 1 }) [ x ]);
        let g = B.finish b in
        match Autodiff.backward g ~wrt:[ x ] with
        | Error e ->
            check Alcotest.bool "mentions softmax" true
              (String.length e > 0)
        | Ok _ -> Alcotest.fail "softmax gradient should be unsupported");
    Alcotest.test_case "tensor without gradient is reported" `Quick (fun () ->
        let b = B.create "f" in
        let x = B.input b "x" [ sd 2 ] in
        let unused = B.input b "unused" [ sd 2 ] in
        B.output b (B.add b Op.Neg [ x ]);
        let g = B.finish b in
        match Autodiff.backward g ~wrt:[ unused ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a missing-gradient error");
  ]

(* --- training-step instances ------------------------------------------- *)

let assert_refines inst =
  match Instance.check inst with
  | Error f -> Alcotest.failf "%s: %s" inst.Instance.name (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
  | Ok s -> (
      match
        Entangle.Certify.replay ~env:inst.Instance.env ~gs:inst.Instance.gs
          ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
          ~output_relation:s.output_relation ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s replay: %s" inst.Instance.name e)

let train_tests =
  [
    Alcotest.test_case "tensor-parallel linear backward refines" `Quick
      (fun () -> assert_refines (Train.linear_backward ()));
    Alcotest.test_case "data-parallel step refines" `Quick (fun () ->
        assert_refines (Train.data_parallel ()));
    Alcotest.test_case "data-parallel with 4 replicas" `Quick (fun () ->
        assert_refines (Train.data_parallel ~replicas:4 ()));
    Alcotest.test_case "pipeline microbatching refines" `Quick (fun () ->
        assert_refines (Train.pipeline ()));
    Alcotest.test_case "pipeline 4 microbatches, 3 stages" `Quick (fun () ->
        assert_refines (Train.pipeline ~microbatches:4 ~layers:3 ()));
    Alcotest.test_case "missing grad sync violates the user expectation" `Quick
      (fun () ->
        let inst = Train.linear_backward ~missing_sync:true () in
        (* The per-replica input-gradient partials are all exposed, so a
           sum-combination still refines; but the optimizer consumed
           rank 0's tensor as if it were the full gradient. *)
        let find g name =
          match Entangle_ir.Serial.tensor_by_name g name with
          | Some t -> t
          | None -> Alcotest.failf "tensor %s missing" name
        in
        let fs =
          Entangle_ir.Expr.leaf (find inst.Instance.gs "grad_x")
        in
        let fd =
          Entangle_ir.Expr.leaf (find inst.Instance.gd "grad_x_0")
        in
        match
          Entangle.Expectation.check ~gs:inst.Instance.gs ~gd:inst.Instance.gd
            ~input_relation:inst.Instance.input_relation ~fs ~fd ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "missing sync accepted");
    Alcotest.test_case "synced backward meets the same expectation" `Quick
      (fun () ->
        let inst = Train.linear_backward () in
        let find g name =
          match Entangle_ir.Serial.tensor_by_name g name with
          | Some t -> t
          | None -> Alcotest.failf "tensor %s missing" name
        in
        let fs = Entangle_ir.Expr.leaf (find inst.Instance.gs "grad_x") in
        let fd = Entangle_ir.Expr.leaf (find inst.Instance.gd "grad_x_0") in
        match
          Entangle.Expectation.check ~gs:inst.Instance.gs ~gd:inst.Instance.gd
            ~input_relation:inst.Instance.input_relation ~fs ~fd ()
        with
        | Ok _ -> ()
        | Error v -> Alcotest.fail v.reason);
  ]

let suite =
  [ ("autodiff.gradients", gradient_tests); ("autodiff.training", train_tests) ]
