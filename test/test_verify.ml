(* Tests for the symbolic bounded lemma verifier and the coverage gate:
   the shipped corpus must verify with no refutations, deliberately
   unsound rules must be rejected with concrete counterexamples, and the
   waiver plumbing must catch gaps and stale entries. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Entangle_lemmas
open Entangle_analysis

let check = Alcotest.check
let codes ds = List.map (fun d -> d.Diagnostic.code) ds
let has_code c ds = List.mem c (codes ds)
let v x = Pattern.V x
let p op args = Pattern.P (Pattern.Fixed op, args)

(* The corpus verification is the expensive fixture; run it once. *)
let corpus_result = lazy (Lemma_verify.verify Registry.all)

let count_verdict vd (report : Lemma_verify.report) =
  List.length
    (List.filter
       (fun (lr : Lemma_verify.lemma_report) -> lr.verdict = vd)
       report.lemmas)

let corpus_tests =
  [
    Alcotest.test_case "corpus has no refuted or vacuous lemma" `Quick
      (fun () ->
        let diags, report = Lazy.force corpus_result in
        check Alcotest.int "refuted" 0
          (count_verdict Lemma_verify.V_refuted report);
        check Alcotest.int "vacuous" 0
          (count_verdict Lemma_verify.V_vacuous report);
        check Alcotest.int "errors" 0 (Diagnostic.count_errors diags));
    Alcotest.test_case "at least 60 lemmas verify symbolically" `Quick
      (fun () ->
        let _, report = Lazy.force corpus_result in
        let verified = count_verdict Lemma_verify.V_verified report in
        check Alcotest.bool
          (Printf.sprintf "%d verified" verified)
          true (verified >= 60));
    Alcotest.test_case "every lemma is classified" `Quick (fun () ->
        let _, report = Lazy.force corpus_result in
        check Alcotest.int "one report per lemma"
          (List.length Registry.all)
          (List.length report.lemmas);
        (* every rule of every lemma got an explicit status *)
        List.iter2
          (fun (l : Lemma.t) (lr : Lemma_verify.lemma_report) ->
            check Alcotest.string "order" l.name lr.lemma;
            check Alcotest.int "one status per rule" (List.length l.rules)
              (List.length lr.rules))
          Registry.all report.lemmas);
    Alcotest.test_case "unsupported lemmas are exactly the reshape ones"
      `Quick (fun () ->
        let diags, report = Lazy.force corpus_result in
        let unsupported =
          List.filter_map
            (fun (lr : Lemma_verify.lemma_report) ->
              if lr.verdict = Lemma_verify.V_unsupported then Some lr.lemma
              else None)
            report.lemmas
        in
        check
          Alcotest.(list string)
          "unsupported"
          [ "reshape-of-reshape"; "reshape-identity" ]
          unsupported;
        check Alcotest.bool "LEMMA210 emitted" true (has_code "LEMMA210" diags));
  ]

(* --- injected unsound lemmas ------------------------------------------- *)

(* add(x, y) -> sub(x, y): well-typed and shape-sound everywhere, but
   wrong on values whenever y <> 0. *)
let bogus_value_lemma =
  Lemma.make "bogus-add-is-sub"
    [ Rule.make "bogus-add-is-sub" (p Op.Add [ v "x"; v "y" ]) (p Op.Sub [ v "x"; v "y" ]) ]

(* identity(x) -> pad(x, +1): always well-typed, never the same shape. *)
let bogus_shape_lemma =
  Lemma.make "bogus-identity-grows"
    [
      Rule.make "bogus-identity-grows"
        (p Op.Identity [ v "x" ])
        (p (Op.Pad { dim = 0; before = Symdim.zero; after = Symdim.one })
           [ v "x" ]);
    ]

let find_msg code diags =
  List.find_map
    (fun d ->
      if d.Diagnostic.code = code then Some d.Diagnostic.message else None)
    diags

let injected_tests =
  [
    Alcotest.test_case "value-unsound rule refuted with counterexample"
      `Quick (fun () ->
        let diags, lr = Lemma_verify.verify_lemma bogus_value_lemma in
        check Alcotest.bool "verdict refuted" true
          (lr.Lemma_verify.verdict = Lemma_verify.V_refuted);
        match find_msg "LEMMA202" diags with
        | None -> Alcotest.fail "expected a LEMMA202 error"
        | Some msg ->
            (* the report must reproduce: concrete dims, a data seed and
               the two expressions *)
            let contains affix =
              let n = String.length affix and m = String.length msg in
              let rec go i =
                i + n <= m && (String.sub msg i n = affix || go (i + 1))
              in
              go 0
            in
            check Alcotest.bool "names a data seed" true (contains "seed");
            check Alcotest.bool "shows a dimension assignment" true
              (contains "=");
            check Alcotest.bool "shows both sides" true (contains "=/="));
    Alcotest.test_case "shape-unsound rule refuted as LEMMA200" `Quick
      (fun () ->
        let diags, lr = Lemma_verify.verify_lemma bogus_shape_lemma in
        check Alcotest.bool "verdict refuted" true
          (lr.Lemma_verify.verdict = Lemma_verify.V_refuted);
        check Alcotest.bool "LEMMA200 emitted" true (has_code "LEMMA200" diags));
    Alcotest.test_case "sound universal rule still verifies" `Quick (fun () ->
        (* control: the same harness proves a correct rule *)
        let ok =
          Lemma.make "ctl-add-comm"
            [ Rule.make "ctl-add-comm" (p Op.Add [ v "x"; v "y" ]) (p Op.Add [ v "y"; v "x" ]) ]
        in
        let diags, lr = Lemma_verify.verify_lemma ok in
        check Alcotest.int "no diagnostics" 0 (List.length diags);
        check Alcotest.bool "verified" true
          (lr.Lemma_verify.verdict = Lemma_verify.V_verified));
  ]

(* --- waivers and the coverage gate -------------------------------------- *)

let mk_report verdicts =
  {
    Lemma_verify.rank_bound = 2;
    lemmas =
      List.map
        (fun (name, verdict) ->
          {
            Lemma_verify.lemma = name;
            klass = Lemma.Aten;
            verdict;
            rules = [];
            scenarios = 0;
            proved = 0;
          })
        verdicts;
  }

let mk_stats ~unexercised names =
  {
    Lemma_check.lemmas_audited = List.length names;
    lemmas_exercised = List.length names - List.length unexercised;
    comparisons = 0;
    unexercised;
  }

let waiver_tests =
  [
    Alcotest.test_case "waiver file parses with comments" `Quick (fun () ->
        match
          Lint.parse_waivers
            "# header\n\nfoo-lemma: some reason # trailing\nbar: why not\n"
        with
        | Ok [ ("foo-lemma", "some reason"); ("bar", "why not") ] -> ()
        | Ok other ->
            Alcotest.failf "unexpected entries: %d" (List.length other)
        | Error e -> Alcotest.failf "parse failed: %s" e);
    Alcotest.test_case "malformed waiver line is rejected" `Quick (fun () ->
        match Lint.parse_waivers "not a waiver line\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "checked-in waiver file is exactly the two reshape \
                        lemmas" `Quick (fun () ->
        (* The shipped lemma_waivers.txt can only shrink: it must parse,
           and it must waive precisely the two reshape lemmas that sit
           outside the symbolic fragment — anything more is a coverage
           hole smuggled in through the waiver list. *)
        let ic = open_in "../lemma_waivers.txt" in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        match Lint.parse_waivers text with
        | Error e -> Alcotest.failf "lemma_waivers.txt does not parse: %s" e
        | Ok waivers ->
            check
              Alcotest.(list string)
              "exactly the two reshape lemmas"
              [ "reshape-identity"; "reshape-of-reshape" ]
              (List.sort String.compare (List.map fst waivers));
            List.iter
              (fun (name, reason) ->
                check Alcotest.bool
                  (Fmt.str "%s names a lemma in the corpus" name)
                  true
                  (List.exists
                     (fun (l : Lemma.t) -> l.Lemma.name = name)
                     Registry.all);
                check Alcotest.bool
                  (Fmt.str "%s carries a non-empty reason" name)
                  true
                  (String.length reason > 0))
              waivers);
    Alcotest.test_case "uncovered lemma is a LEMMA203 gap" `Quick (fun () ->
        let report = mk_report [ ("gap", Lemma_verify.V_unattempted) ] in
        let stats = mk_stats ~unexercised:[ "gap" ] [ "gap" ] in
        let diags, cover = Lint.coverage ~report ~stats ~waivers:[] in
        check Alcotest.bool "LEMMA203" true (has_code "LEMMA203" diags);
        check Alcotest.int "gap counted" 1 cover.Lint.gaps;
        check Alcotest.int "exit 1" 1 (Lint.exit_code diags));
    Alcotest.test_case "waiver closes the gap" `Quick (fun () ->
        let report = mk_report [ ("gap", Lemma_verify.V_unattempted) ] in
        let stats = mk_stats ~unexercised:[ "gap" ] [ "gap" ] in
        let diags, cover =
          Lint.coverage ~report ~stats ~waivers:[ ("gap", "known hole") ]
        in
        check Alcotest.bool "no LEMMA203" false (has_code "LEMMA203" diags);
        check Alcotest.int "no gaps" 0 cover.Lint.gaps;
        check Alcotest.int "exit 0" 0 (Lint.exit_code diags));
    Alcotest.test_case "numeric exercise alone covers a lemma" `Quick
      (fun () ->
        let report = mk_report [ ("numonly", Lemma_verify.V_undecided) ] in
        let stats = mk_stats ~unexercised:[] [ "numonly" ] in
        let diags, _ = Lint.coverage ~report ~stats ~waivers:[] in
        check Alcotest.bool "no LEMMA203" false (has_code "LEMMA203" diags));
    Alcotest.test_case "stale and unknown waivers warn as LEMMA204" `Quick
      (fun () ->
        let report = mk_report [ ("proved", Lemma_verify.V_verified) ] in
        let stats = mk_stats ~unexercised:[] [ "proved" ] in
        let diags, _ =
          Lint.coverage ~report ~stats
            ~waivers:[ ("proved", "stale"); ("no-such-lemma", "ghost") ]
        in
        let lemma204 =
          List.filter (fun d -> d.Diagnostic.code = "LEMMA204") diags
        in
        check Alcotest.int "two warnings" 2 (List.length lemma204);
        check Alcotest.int "warnings don't fail lint" 0 (Lint.exit_code diags));
    Alcotest.test_case "shipped waiver file covers the shipped corpus" `Quick
      (fun () ->
        (* the end-to-end @lint contract: corpus + audit + checked-in
           waivers = zero gaps *)
        let _, report = Lazy.force corpus_result in
        let _, stats = Lemma_check.audit ~seed:42 Registry.all in
        let waivers =
          [
            ("reshape-of-reshape", "outside the symbolic fragment");
            ("reshape-identity", "outside the symbolic fragment");
          ]
        in
        let diags, cover = Lint.coverage ~report ~stats ~waivers in
        check Alcotest.int "no gaps" 0 cover.Lint.gaps;
        check Alcotest.int "no errors" 0 (Diagnostic.count_errors diags));
  ]

let suite =
  [
    ("verify:corpus", corpus_tests);
    ("verify:injected", injected_tests);
    ("verify:waivers", waiver_tests);
  ]
