(* Tests for the S-expression layer and the graph / relation file
   format: unit round trips, error reporting, and a full round trip of
   every zoo model through text followed by a re-verification. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_models

let check = Alcotest.check
let sd = Symdim.of_int

let sexp_tests =
  [
    Alcotest.test_case "parse and print round trip" `Quick (fun () ->
        let cases =
          [ "(a b c)"; "(a (b c) d)"; "atom"; "(nested (deeply (very ())))" ]
        in
        List.iter
          (fun input ->
            match Sexp.of_string input with
            | Error e -> Alcotest.failf "%s: %s" input e
            | Ok s -> (
                match Sexp.of_string (Sexp.to_string s) with
                | Ok s' ->
                    check Alcotest.string input (Sexp.to_string s) (Sexp.to_string s')
                | Error e -> Alcotest.failf "reparse: %s" e))
          cases);
    Alcotest.test_case "comments and quoted atoms" `Quick (fun () ->
        match Sexp.of_string "; header\n(a \"b c\" ; trailing\n d)" with
        | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b c"; Sexp.Atom "d" ]) -> ()
        | Ok s -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string s)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "quoted-atom escapes round trip" `Quick (fun () ->
        (* Atoms that force quoting — embedded quotes, backslashes,
           newlines, parens — must print and reparse to the same
           value, not just to something that parses. *)
        List.iter
          (fun atom ->
            let s = Sexp.list [ Sexp.atom "k"; Sexp.atom atom ] in
            match Sexp.of_string (Sexp.to_string s) with
            | Ok (Sexp.List [ Sexp.Atom "k"; Sexp.Atom atom' ]) ->
                check Alcotest.string "atom" atom atom'
            | Ok s' -> Alcotest.failf "reparsed shape: %s" (Sexp.to_string s')
            | Error e -> Alcotest.failf "reparse %S: %s" atom e)
          [
            "has \"quotes\" inside";
            "back\\slash";
            "\\\"both\\\"";
            "line\nbreak";
            "(parens)";
            "; not a comment";
            "";
          ]);
    Alcotest.test_case "parse errors" `Quick (fun () ->
        List.iter
          (fun bad ->
            check Alcotest.bool bad true (Result.is_error (Sexp.of_string bad)))
          [ "(a b"; ")"; "(a) trailing"; "\"unterminated" ]);
  ]

let symdim_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"symdim serialization round trips" ~count:200
       QCheck.(triple (int_range (-20) 20) (int_range (-9) 9) (int_range (-9) 9))
       (fun (c, ca, cb) ->
         let d =
           Symdim.(
             add (of_int c)
               (add (mul_int ca (sym "a")) (mul_int cb (sym "b"))))
         in
         match Serial.symdim_of_sexp (Serial.symdim_to_sexp d) with
         | Ok d' -> Symdim.equal d d'
         | Error _ -> false))

let op_roundtrip_tests =
  let ops =
    [
      Op.Add; Op.Matmul; Op.Gelu; Op.Sum_n; Op.All_reduce;
      Op.Scale (Rat.make 1 2);
      Op.Concat { dim = 1 };
      Op.Slice { dim = 0; start = sd 0; stop = Symdim.mul_int 2 (Symdim.sym "s") };
      Op.Transpose { dim0 = 0; dim1 = 1 };
      Op.Reshape { shape = [ sd 2; Symdim.sym "s" ] };
      Op.Pad { dim = 1; before = sd 1; after = sd 2 };
      Op.Reduce_sum { dim = 0; keepdim = true };
      Op.Reduce_mean { dim = 1; keepdim = false };
      Op.Softmax { dim = 1 };
      Op.Layernorm { eps = 1e-5 };
      Op.Rmsnorm { eps = 1e-6 };
      Op.Reduce_scatter { dim = 0; index = 1; count = 4 };
      Op.All_gather { dim = 1 };
      Op.Swiglu_fused; Op.Hlo_dot;
      Op.Hlo_slice { dim = 0; start = sd 1; stop = sd 2 };
      Op.Hlo_concatenate { dim = 0 };
      Op.Embedding; Op.Rope; Op.Mse_loss; Op.Cross_entropy;
    ]
  in
  [
    Alcotest.test_case "operator serialization round trips" `Quick (fun () ->
        List.iter
          (fun op ->
            match Serial.op_of_sexp (Serial.op_to_sexp op) with
            | Ok op' ->
                check Alcotest.bool (Op.key op) true (Op.equal op op')
            | Error e -> Alcotest.failf "%s: %s" (Op.key op) e)
          ops);
  ]

let graph_roundtrip name inst =
  Alcotest.test_case (name ^ " round trips through text") `Slow (fun () ->
      let reload g =
        match Serial.graph_of_string (Serial.graph_to_string g) with
        | Ok g' -> g'
        | Error e -> Alcotest.failf "%s: %s" (Graph.name g) e
      in
      let gs = reload inst.Instance.gs in
      let gd = reload inst.Instance.gd in
      check Alcotest.int "node count gs" (Graph.num_nodes inst.Instance.gs)
        (Graph.num_nodes gs);
      check Alcotest.int "node count gd" (Graph.num_nodes inst.Instance.gd)
        (Graph.num_nodes gd);
      check Alcotest.bool "gs validates" true (Graph.validate gs = Ok ());
      check Alcotest.bool "gd validates" true (Graph.validate gd = Ok ());
      (* Relation round trip against the reloaded graphs. *)
      let rel_text = Entangle.Relation_io.to_string inst.Instance.input_relation in
      match Entangle.Relation_io.of_string ~gs ~gd rel_text with
      | Error e -> Alcotest.fail e
      | Ok input_relation -> (
          check Alcotest.int "relation cardinality"
            (Entangle.Relation.cardinal inst.Instance.input_relation)
            (Entangle.Relation.cardinal input_relation);
          (* And the reloaded triple still verifies. *)
          let rules =
            Entangle_lemmas.Registry.rules_for_model inst.Instance.family
          in
          match Entangle.Refine.check ~rules ~gs ~gd ~input_relation () with
          | Ok _ -> ()
          | Error f ->
              Alcotest.failf "reloaded check failed: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)))

let graph_error_tests =
  [
    Alcotest.test_case "unknown operator is reported" `Quick (fun () ->
        let text =
          "(graph g (constraints) (inputs (x (shape 2) f32)) (nodes (y \
           (frobnicate) (x))) (outputs y))"
        in
        check Alcotest.bool "error" true
          (Result.is_error (Serial.graph_of_string text)));
    Alcotest.test_case "unknown tensor reference is reported" `Quick (fun () ->
        let text =
          "(graph g (constraints) (inputs (x (shape 2) f32)) (nodes (y (neg) \
           (zz))) (outputs y))"
        in
        check Alcotest.bool "error" true
          (Result.is_error (Serial.graph_of_string text)));
    Alcotest.test_case "shape errors surface through parsing" `Quick (fun () ->
        let text =
          "(graph g (constraints) (inputs (x (shape 2) f32) (w (shape 3) \
           f32)) (nodes (y (add) (x w))) (outputs y))"
        in
        check Alcotest.bool "error" true
          (Result.is_error (Serial.graph_of_string text)));
    Alcotest.test_case "duplicate tensor names rejected on write" `Quick
      (fun () ->
        let module B = Graph.Builder in
        let b = B.create "dup" in
        let _ = B.input b "x" [ sd 2 ] in
        let x2 = B.input b "x" [ sd 2 ] in
        B.output b x2;
        let g = B.finish b in
        check Alcotest.bool "raises" true
          (try ignore (Serial.graph_to_string g); false
           with Invalid_argument _ -> true));
  ]

let suite =
  [
    ("serial.sexp", sexp_tests);
    ("serial.roundtrip", [ symdim_roundtrip ] @ op_roundtrip_tests);
    ( "serial.graphs",
      [
        graph_roundtrip "regression" (Regression.build ());
        graph_roundtrip "gpt" (Gpt.build ());
        graph_roundtrip "llama" (Llama.build ());
        graph_roundtrip "moe" (Moe.build ());
        graph_roundtrip "data-parallel" (Train.data_parallel ());
      ] );
    ("serial.errors", graph_error_tests);
  ]
