(* Tests for the core checker: relations, per-operator inference, the
   refinement algorithm, expectation checking, certification, and the
   optimization configurations. *)

open Entangle_symbolic
open Entangle_ir
module B = Graph.Builder

let check = Alcotest.check
let sd = Symdim.of_int

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- relations ----------------------------------------------------------- *)

let relation_tests =
  let a = Tensor.create ~name:"a" [ sd 2 ] in
  let b = Tensor.create ~name:"b" [ sd 2 ] in
  let e1 = Expr.leaf b in
  let e2 = Expr.app Op.Identity [ Expr.leaf b ] in
  [
    Alcotest.test_case "add dedups and sorts by size" `Quick (fun () ->
        let r = Entangle.Relation.empty in
        let r = Entangle.Relation.add r a e2 in
        let r = Entangle.Relation.add r a e1 in
        let r = Entangle.Relation.add r a e1 in
        (match Entangle.Relation.find r a with
        | [ x; y ] ->
            check Alcotest.bool "simplest first" true (Expr.equal x e1);
            check Alcotest.bool "second" true (Expr.equal y e2)
        | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
        check Alcotest.int "cardinal" 1 (Entangle.Relation.cardinal r));
    Alcotest.test_case "union merges mappings" `Quick (fun () ->
        let r1 = Entangle.Relation.singleton a e1 in
        let r2 = Entangle.Relation.singleton a e2 in
        check Alcotest.int "merged" 2
          (List.length (Entangle.Relation.find (Entangle.Relation.union r1 r2) a)));
    Alcotest.test_case "tensors_in_range" `Quick (fun () ->
        let r = Entangle.Relation.singleton a e1 in
        check Alcotest.bool "contains b" true
          (Tensor.Set.mem b (Entangle.Relation.tensors_in_range r)));
    Alcotest.test_case "complete_for and cleanliness" `Quick (fun () ->
        let r = Entangle.Relation.singleton a e1 in
        check Alcotest.bool "complete" true (Entangle.Relation.complete_for r [ a ]);
        check Alcotest.bool "incomplete" false (Entangle.Relation.complete_for r [ a; b ]);
        check Alcotest.bool "clean" true (Entangle.Relation.is_clean r);
        let dirty = Entangle.Relation.add r a (Expr.app Op.Neg [ Expr.leaf b ]) in
        check Alcotest.bool "dirty" false (Entangle.Relation.is_clean dirty));
  ]

(* --- a tiny refinement fixture (the paper's Figure 1) -------------------- *)

type fixture = {
  gs : Graph.t;
  gd : Graph.t;
  input_relation : Entangle.Relation.t;
  c : Tensor.t;  (* sequential intermediate *)
  f : Tensor.t;  (* sequential output *)
}

let figure1 ?(wrong_scatter = false) () =
  let m = 8 and k = 6 and n = 4 in
  let bs = B.create "gs" in
  let a = B.input bs "A" [ sd m; sd k ] in
  let b = B.input bs "B" [ sd k; sd n ] in
  let e = B.input bs "E" [ sd m; sd n ] in
  let c = B.add bs ~name:"C" Op.Matmul [ a; b ] in
  let f = B.add bs ~name:"F" Op.Sub [ c; e ] in
  B.output bs f;
  let gs = B.finish bs in
  let bd = B.create "gd" in
  let a1 = B.input bd "A1" [ sd m; sd (k / 2) ] in
  let a2 = B.input bd "A2" [ sd m; sd (k / 2) ] in
  let b1 = B.input bd "B1" [ sd (k / 2); sd n ] in
  let b2 = B.input bd "B2" [ sd (k / 2); sd n ] in
  let e1 = B.input bd "E1" [ sd (m / 2); sd n ] in
  let e2 = B.input bd "E2" [ sd (m / 2); sd n ] in
  let c1 = B.add bd ~name:"C1" Op.Matmul [ a1; b1 ] in
  let c2 = B.add bd ~name:"C2" Op.Matmul [ a2; b2 ] in
  (* The wrong_scatter variant gives both ranks the same chunk — a
     plausible copy-paste bug. *)
  let idx r = if wrong_scatter then 0 else r in
  let d1 =
    B.add bd ~name:"D1" (Op.Reduce_scatter { dim = 0; index = idx 0; count = 2 }) [ c1; c2 ]
  in
  let d2 =
    B.add bd ~name:"D2" (Op.Reduce_scatter { dim = 0; index = idx 1; count = 2 }) [ c1; c2 ]
  in
  let f1 = B.add bd ~name:"F1" Op.Sub [ d1; e1 ] in
  let f2 = B.add bd ~name:"F2" Op.Sub [ d2; e2 ] in
  B.output bd f1;
  B.output bd f2;
  let gd = B.finish bd in
  let concat dim parts = Expr.app (Op.Concat { dim }) (List.map Expr.leaf parts) in
  {
    gs;
    gd;
    input_relation =
      Entangle.Relation.of_list
        [ (a, concat 1 [ a1; a2 ]); (b, concat 0 [ b1; b2 ]); (e, concat 0 [ e1; e2 ]) ];
    c;
    f;
  }

let refine_tests =
  [
    Alcotest.test_case "figure 1 refines with both mappings" `Quick (fun () ->
        let fx = figure1 () in
        match
          Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ()
        with
        | Error f -> Alcotest.failf "unexpected failure: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        | Ok s ->
            check Alcotest.bool "F mapped" true
              (Entangle.Relation.mem s.output_relation fx.f);
            check Alcotest.bool "C mapped in full relation" true
              (Entangle.Relation.mem s.full_relation fx.c);
            check Alcotest.bool "output relation clean" true
              (Entangle.Relation.is_clean s.output_relation);
            (* the relation over outputs uses only distributed outputs *)
            List.iter
              (fun (_, exprs) ->
                List.iter
                  (fun e ->
                    List.iter
                      (fun leaf ->
                        check Alcotest.bool "leaf is gd output" true
                          (Graph.is_output fx.gd leaf))
                      (Expr.leaves e))
                  exprs)
              (Entangle.Relation.bindings s.output_relation));
    Alcotest.test_case "certificate replays numerically" `Quick (fun () ->
        let fx = figure1 () in
        match
          Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ()
        with
        | Error f -> Alcotest.failf "unexpected failure: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        | Ok s -> (
            match
              Entangle.Certify.replay ~env:(Interp.env_of_list []) ~gs:fx.gs
                ~gd:fx.gd ~input_relation:fx.input_relation
                ~output_relation:s.output_relation ()
            with
            | Ok () -> ()
            | Error e -> Alcotest.fail e));
    Alcotest.test_case "wrong scatter indices are rejected and localized" `Quick
      (fun () ->
        let fx = figure1 ~wrong_scatter:true () in
        match
          Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ()
        with
        | Ok _ -> Alcotest.fail "buggy scatter accepted"
        | Error f ->
            check Alcotest.string "localized at the sub" "sub"
              (Op.name (Node.op f.operator));
            check Alcotest.bool "partial relation has C" true
              (Entangle.Relation.mem f.partial_relation fx.c));
    Alcotest.test_case "missing input mapping is an error" `Quick (fun () ->
        let fx = figure1 () in
        let incomplete =
          Entangle.Relation.restrict fx.input_relation (fun t ->
              Tensor.name t <> "B")
        in
        match
          Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd ~input_relation:incomplete ()
        with
        | Ok _ -> Alcotest.fail "accepted incomplete input relation"
        | Error f ->
            check Alcotest.bool "mentions mapping" true
              (contains (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict) "no mapping"));
    Alcotest.test_case "non-clean input relation rejected" `Quick (fun () ->
        let fx = figure1 () in
        let dirty =
          Entangle.Relation.add fx.input_relation
            (List.hd (Graph.inputs fx.gs))
            (Expr.app Op.Neg [ Expr.leaf (List.hd (Graph.inputs fx.gd)) ])
        in
        check Alcotest.bool "raises" true
          (try
             ignore
               (Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd ~input_relation:dirty ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "optimizations agree with baseline" `Quick (fun () ->
        let fx = figure1 () in
        List.iter
          (fun config ->
            match
              Entangle.Refine.check ~config ~gs:fx.gs ~gd:fx.gd
                ~input_relation:fx.input_relation ()
            with
            | Ok _ -> ()
            | Error f -> Alcotest.failf "config failed: %s" (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict))
          [ Entangle.Config.default; Entangle.Config.no_frontier;
            Entangle.Config.no_pruning ]);
    Alcotest.test_case "stats populated" `Quick (fun () ->
        let fx = figure1 () in
        match
          Entangle.Refine.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ()
        with
        | Error _ -> Alcotest.fail "failed"
        | Ok s ->
            check Alcotest.int "two operators" 2 s.stats.operators_processed;
            check Alcotest.bool "some rule hits" true (s.stats.rule_hits <> []);
            check Alcotest.bool "peak nodes" true (s.stats.egraph_nodes_peak > 0));
  ]

(* --- expectation checking -------------------------------------------------- *)

let expectation_tests =
  [
    Alcotest.test_case "identity expectation holds on figure 1" `Quick (fun () ->
        let fx = figure1 () in
        (* F should equal the gathered distributed outputs. *)
        let f1 = List.nth (Graph.outputs fx.gd) 0 in
        let f2 = List.nth (Graph.outputs fx.gd) 1 in
        let fd = Expr.app (Op.Concat { dim = 0 }) [ Expr.leaf f1; Expr.leaf f2 ] in
        match
          Entangle.Expectation.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ~fs:(Expr.leaf fx.f) ~fd ()
        with
        | Ok _ -> ()
        | Error v -> Alcotest.fail v.reason);
    Alcotest.test_case "wrong expectation is violated" `Quick (fun () ->
        let fx = figure1 () in
        (* Claiming F equals just rank 0's shard must be rejected. *)
        let f1 = List.nth (Graph.outputs fx.gd) 0 in
        match
          Entangle.Expectation.check ~gs:fx.gs ~gd:fx.gd
            ~input_relation:fx.input_relation ~fs:(Expr.leaf fx.f)
            ~fd:(Expr.leaf f1) ()
        with
        | Ok _ -> Alcotest.fail "wrong expectation accepted"
        | Error _ -> ());
    Alcotest.test_case "foreign expectation tensors rejected" `Quick (fun () ->
        let fx = figure1 () in
        let foreign = Tensor.create ~name:"zz" [ sd 1 ] in
        check Alcotest.bool "raises" true
          (try
             ignore
               (Entangle.Expectation.check ~gs:fx.gs ~gd:fx.gd
                  ~input_relation:fx.input_relation ~fs:(Expr.leaf foreign)
                  ~fd:(Expr.leaf foreign) ());
             false
           with Invalid_argument _ -> true));
  ]

(* --- certify rejects wrong relations --------------------------------------- *)

let certify_tests =
  [
    Alcotest.test_case "replay rejects a wrong output relation" `Quick (fun () ->
        let fx = figure1 () in
        (* Map F to only the first shard: numerically wrong. *)
        let f1 = List.nth (Graph.outputs fx.gd) 0 in
        let wrong =
          Entangle.Relation.singleton fx.f
            (Expr.app (Op.Concat { dim = 0 }) [ Expr.leaf f1; Expr.leaf f1 ])
        in
        match
          Entangle.Certify.replay ~env:(Interp.env_of_list []) ~gs:fx.gs
            ~gd:fx.gd ~input_relation:fx.input_relation ~output_relation:wrong ()
        with
        | Ok () -> Alcotest.fail "wrong relation replayed successfully"
        | Error _ -> ());
    Alcotest.test_case "replay unifies replicated inputs" `Quick (fun () ->
        (* gs: y = neg(x); gd: two replicas, y_r = neg(x_r). *)
        let bs = B.create "gs" in
        let x = B.input bs "x" [ sd 4 ] in
        let y = B.add bs ~name:"y" Op.Neg [ x ] in
        B.output bs y;
        let gs = B.finish bs in
        let bd = B.create "gd" in
        let x0 = B.input bd "x0" [ sd 4 ] in
        let x1 = B.input bd "x1" [ sd 4 ] in
        let y0 = B.add bd ~name:"y0" Op.Neg [ x0 ] in
        let _y1 = B.add bd ~name:"y1" Op.Neg [ x1 ] in
        B.output bd y0;
        let gd = B.finish bd in
        let input_relation =
          Entangle.Relation.add_all Entangle.Relation.empty x
            [ Expr.leaf x0; Expr.leaf x1 ]
        in
        match
          Entangle.Refine.check ~gs ~gd ~input_relation ()
        with
        | Error f -> Alcotest.fail (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
        | Ok s -> (
            match
              Entangle.Certify.replay ~env:(Interp.env_of_list []) ~gs ~gd
                ~input_relation ~output_relation:s.output_relation ()
            with
            | Ok () -> ()
            | Error e -> Alcotest.fail e));
  ]

(* --- scheduler configurations agree on real instances ---------------------- *)

let scheduler_tests =
  let configs =
    [
      ("default", Entangle.Config.default);
      ("simple", Entangle.Config.simple_runner);
      ( "backoff only",
        { Entangle.Config.default with incremental_matching = false } );
      ( "incremental only",
        {
          Entangle.Config.default with
          scheduler = Entangle_egraph.Runner.Simple;
        } );
    ]
  in
  let verdict config inst =
    match Entangle_models.Instance.check ~config inst with
    | Ok _ -> "refines"
    | Error _ -> "FAILED"
  in
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "all scheduler configs agree on %s" name)
        `Slow
        (fun () ->
          match Entangle_models.Zoo.by_name name with
          | None -> Alcotest.failf "unknown zoo instance %s" name
          | Some inst ->
              let reference = verdict Entangle.Config.simple_runner inst in
              List.iter
                (fun (cname, config) ->
                  check Alcotest.string cname reference (verdict config inst))
                configs))
    [ "regression"; "linear-bwd"; "bytedance-bwd"; "pipeline"; "dp" ]

let suite =
  [
    ("core.relation", relation_tests);
    ("core.refine", refine_tests);
    ("core.expectation", expectation_tests);
    ("core.certify", certify_tests);
    ("core.scheduler", scheduler_tests);
  ]
