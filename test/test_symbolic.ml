(* Tests for the symbolic-integer engine: rationals, affine symbolic
   dimensions, and the Fourier-Motzkin decision procedure. *)

open Entangle_symbolic

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Rat --------------------------------------------------------------- *)

let rat_tests =
  [
    Alcotest.test_case "normalization" `Quick (fun () ->
        check Alcotest.bool "2/4 = 1/2" true Rat.(equal (make 2 4) (make 1 2));
        check Alcotest.bool "neg den" true Rat.(equal (make 1 (-2)) (make (-1) 2));
        check Alcotest.int "num" 1 (Rat.num (Rat.make 3 3));
        check Alcotest.int "den" 1 (Rat.den (Rat.make 3 3)));
    Alcotest.test_case "zero denominator rejected" `Quick (fun () ->
        Alcotest.check_raises "make 1 0" (Invalid_argument "Rat.make: zero denominator")
          (fun () -> ignore (Rat.make 1 0)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let half = Rat.make 1 2 and third = Rat.make 1 3 in
        check Alcotest.bool "1/2+1/3" true
          Rat.(equal (add half third) (make 5 6));
        check Alcotest.bool "1/2*1/3" true
          Rat.(equal (mul half third) (make 1 6));
        check Alcotest.bool "1/2-1/3" true
          Rat.(equal (sub half third) (make 1 6));
        check Alcotest.bool "div" true Rat.(equal (div half third) (make 3 2)));
    Alcotest.test_case "comparisons and predicates" `Quick (fun () ->
        check Alcotest.int "sign neg" (-1) (Rat.sign (Rat.make (-1) 2));
        check Alcotest.bool "1/2 < 2/3" true (Rat.compare (Rat.make 1 2) (Rat.make 2 3) < 0);
        check Alcotest.bool "integer" true (Rat.is_integer (Rat.make 4 2));
        check Alcotest.bool "not integer" false (Rat.is_integer (Rat.make 1 2));
        check (Alcotest.float 1e-9) "to_float" 0.5 (Rat.to_float (Rat.make 1 2)));
    qtest
      (QCheck.Test.make ~name:"rat field laws on small rationals" ~count:200
         QCheck.(
           quad (int_range (-20) 20) (int_range 1 20) (int_range (-20) 20)
             (int_range 1 20))
         (fun (a, b, c, d) ->
           let x = Rat.make a b and y = Rat.make c d in
           Rat.(equal (add x y) (add y x))
           && Rat.(equal (mul x y) (mul y x))
           && Rat.(equal (sub (add x y) y) x)));
  ]

(* --- Symdim ------------------------------------------------------------ *)

let sym_gen =
  (* Random affine expression over symbols a, b with small coeffs. *)
  QCheck.(
    map
      (fun (c, ca, cb) ->
        Symdim.(
          add (of_int c)
            (add (mul_int ca (sym "a")) (mul_int cb (sym "b")))))
      (triple (int_range (-10) 10) (int_range (-5) 5) (int_range (-5) 5)))

let eval_ab a b e = Symdim.eval (function "a" -> a | "b" -> b | _ -> 0) e

let symdim_tests =
  [
    Alcotest.test_case "construction and inspection" `Quick (fun () ->
        let e = Symdim.(add (mul_int 3 (sym "s")) (of_int 7)) in
        check Alcotest.int "coeff" 3 (Symdim.coeff e "s");
        check Alcotest.int "const" 7 (Symdim.const_part e);
        check (Alcotest.list Alcotest.string) "symbols" [ "s" ] (Symdim.symbols e);
        check Alcotest.bool "not const" false (Symdim.is_const e);
        check (Alcotest.option Alcotest.int) "to_int" None (Symdim.to_int e));
    Alcotest.test_case "cancellation normalizes" `Quick (fun () ->
        let s = Symdim.sym "s" in
        let e = Symdim.(sub (add s (of_int 2)) s) in
        check (Alcotest.option Alcotest.int) "s+2-s" (Some 2) (Symdim.to_int e));
    Alcotest.test_case "mul affine cases" `Quick (fun () ->
        let s = Symdim.sym "s" in
        check Alcotest.bool "const*sym" true
          (match Symdim.mul (Symdim.of_int 3) s with
          | Some e -> Symdim.equal e (Symdim.mul_int 3 s)
          | None -> false);
        check Alcotest.bool "sym*sym is not affine" true
          (Symdim.mul s s = None));
    Alcotest.test_case "div_int exact and inexact" `Quick (fun () ->
        let e = Symdim.mul_int 6 (Symdim.sym "s") in
        check Alcotest.bool "6s/3 = 2s" true
          (match Symdim.div_int e 3 with
          | Some r -> Symdim.equal r (Symdim.mul_int 2 (Symdim.sym "s"))
          | None -> false);
        check Alcotest.bool "6s/4 fails" true (Symdim.div_int e 4 = None);
        check Alcotest.bool "div by zero fails" true (Symdim.div_int e 0 = None));
    Alcotest.test_case "subst" `Quick (fun () ->
        let e = Symdim.(add (mul_int 2 (sym "s")) (of_int 1)) in
        let r = Symdim.subst (function
          | "s" -> Some (Symdim.mul_int 3 (Symdim.sym "t"))
          | _ -> None) e in
        check Alcotest.bool "2(3t)+1 = 6t+1" true
          (Symdim.equal r Symdim.(add (mul_int 6 (sym "t")) (of_int 1))));
    qtest
      (QCheck.Test.make ~name:"structural equality = semantic equality" ~count:300
         (QCheck.pair sym_gen sym_gen)
         (fun (x, y) ->
           let syntactic = Symdim.equal x y in
           let semantic =
             List.for_all
               (fun (a, b) -> eval_ab a b x = eval_ab a b y)
               [ (0, 0); (1, 0); (0, 1); (3, 5); (-2, 7); (11, -13) ]
           in
           (* Structural equality implies semantic; for affine forms over
              enough sample points, the converse holds too. *)
           syntactic = semantic));
    qtest
      (QCheck.Test.make ~name:"add/sub/eval coherence" ~count:300
         (QCheck.pair sym_gen sym_gen)
         (fun (x, y) ->
           eval_ab 3 4 (Symdim.add x y) = eval_ab 3 4 x + eval_ab 3 4 y
           && eval_ab 3 4 (Symdim.sub x y) = eval_ab 3 4 x - eval_ab 3 4 y
           && eval_ab 3 4 (Symdim.neg x) = -eval_ab 3 4 x));
  ]

(* --- Constraint store and Decide ---------------------------------------- *)

let decide_tests =
  let s = Symdim.sym "s" and t = Symdim.sym "t" in
  let store =
    Constraint_store.empty
    |> fun st -> Constraint_store.add_positive st "s"
    |> fun st -> Constraint_store.add_positive st "t"
    |> fun st -> Constraint_store.add_ge st (Symdim.sub t s)
    (* t >= s >= 1 *)
  in
  [
    Alcotest.test_case "structural equality decided without solver" `Quick
      (fun () ->
        check Alcotest.bool "s+s = 2s" true
          (Decide.prove_eq Constraint_store.empty (Symdim.add s s)
             (Symdim.mul_int 2 s)));
    Alcotest.test_case "inequalities under constraints" `Quick (fun () ->
        check Alcotest.bool "s <= t" true (Decide.prove_le store s t);
        check Alcotest.bool "not t <= s" false (Decide.prove_le store t s);
        check Alcotest.bool "0 < s" true
          (Decide.prove_lt store Symdim.zero s);
        check Alcotest.bool "s <= 2t" true
          (Decide.prove_le store s (Symdim.mul_int 2 t)));
    Alcotest.test_case "provable disequality" `Quick (fun () ->
        check Alcotest.bool "s <> s+1" true
          (Decide.prove_ne store s (Symdim.add s Symdim.one));
        check Alcotest.bool "s vs t unknown" false (Decide.prove_ne store s t));
    Alcotest.test_case "compare_known" `Quick (fun () ->
        let pp_v = Alcotest.of_pp (fun ppf -> function
          | `Eq -> Fmt.string ppf "Eq" | `Lt -> Fmt.string ppf "Lt"
          | `Gt -> Fmt.string ppf "Gt" | `Unknown -> Fmt.string ppf "Unknown") in
        check pp_v "eq" `Eq (Decide.compare_known store s s);
        check pp_v "lt" `Lt
          (Decide.compare_known store s (Symdim.add t Symdim.one));
        check pp_v "gt" `Gt (Decide.compare_known store (Symdim.add s t) s);
        check pp_v "unknown" `Unknown (Decide.compare_known store s t));
    Alcotest.test_case "feasibility" `Quick (fun () ->
        (* x >= 1 and -x >= 0 is infeasible *)
        check Alcotest.bool "infeasible" false
          (Decide.feasible [ Symdim.sub s Symdim.one; Symdim.neg s ]);
        check Alcotest.bool "feasible" true
          (Decide.feasible [ s; Symdim.sub t s ]));
    qtest
      (QCheck.Test.make ~name:"FM agrees with brute force over small ints"
         ~count:150
         QCheck.(
           pair
             (list_of_size (Gen.int_range 0 3)
                (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-4) 4)))
             (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-4) 4)))
         (fun (constrs, (ga, gb, gc)) ->
           let mk (ca, cb, c) =
             Symdim.(
               add (of_int c)
                 (add (mul_int ca (sym "a")) (mul_int cb (sym "b"))))
           in
           let store =
             Constraint_store.of_list
               (List.map (fun c -> Constraint_store.Ge (mk c)) constrs)
           in
           let goal = mk (ga, gb, gc) in
           match Decide.implies_ge store goal with
           | Decide.Unknown -> true (* incompleteness is allowed *)
           | Decide.Proved ->
               (* Soundness: every integer point in [-8,8]^2 satisfying
                  the store must satisfy the goal. *)
               let ok = ref true in
               for a = -8 to 8 do
                 for b = -8 to 8 do
                   let sat =
                     List.for_all
                       (fun c -> eval_ab a b (mk c) >= 0)
                       constrs
                   in
                   if sat && eval_ab a b goal < 0 then ok := false
                 done
               done;
               !ok));
  ]

(* The exact comparisons the model lowerings rely on: sequence lengths
   of the form 24*sc partitioned into p chunks, slice bounds, and
   padding offsets. *)
let model_arithmetic_tests =
  let sc = Symdim.sym "sc" in
  let seq = Symdim.mul_int 24 sc in
  let store = Constraint_store.add_positive Constraint_store.empty "sc" in
  let chunk p = Option.get (Symdim.div_int seq p) in
  [
    Alcotest.test_case "chunks tile the sequence" `Quick (fun () ->
        List.iter
          (fun p ->
            let c = chunk p in
            let total =
              List.fold_left
                (fun acc _ -> Symdim.add acc c)
                Symdim.zero
                (List.init p Fun.id)
            in
            check Alcotest.bool (Printf.sprintf "p=%d" p) true
              (Decide.prove_eq store total seq))
          [ 2; 3; 4; 6; 8 ]);
    Alcotest.test_case "chunk bounds are ordered" `Quick (fun () ->
        let c = chunk 4 in
        let b i = Symdim.mul_int i c in
        check Alcotest.bool "0 <= c" true (Decide.prove_le store (b 0) (b 1));
        check Alcotest.bool "3c <= seq" true (Decide.prove_le store (b 3) seq);
        check Alcotest.bool "c < 2c" true (Decide.prove_lt store (b 1) (b 2));
        check Alcotest.bool "not 2c <= c" false (Decide.prove_le store (b 2) (b 1)));
    Alcotest.test_case "padded offsets differ from unpadded" `Quick (fun () ->
        let c = chunk 2 in
        let padded = Symdim.add c (Symdim.of_int 2) in
        check Alcotest.bool "provably different" true
          (Decide.prove_ne store c padded));
    Alcotest.test_case "indivisible symbolic split fails" `Quick (fun () ->
        check Alcotest.bool "24sc/5" true (Symdim.div_int seq 5 = None);
        check Alcotest.bool "24sc/7" true (Symdim.div_int seq 7 = None));
  ]

(* --- Decide soundness properties ---------------------------------------- *)

(* Randomized soundness: build a store whose constraints hold at a
   hidden witness assignment by construction, then check that anything
   the engine claims to prove also holds at the witness. This can never
   catch incompleteness (Unknown is always allowed) — only unsoundness,
   which is the property the lemma verifier's refutation logic leans
   on. *)
let decide_property_tests =
  let nsyms = 4 in
  let sym_name i = Printf.sprintf "q%d" i in
  let affine_gen =
    QCheck.Gen.(
      pair
        (array_repeat nsyms (int_range (-3) 3))
        (int_range (-5) 5))
  in
  let to_symdim (coeffs, c) =
    Array.to_list coeffs
    |> List.mapi (fun i k -> Symdim.mul_int k (Symdim.sym (sym_name i)))
    |> List.fold_left Symdim.add (Symdim.of_int c)
  in
  let eval_affine witness (coeffs, c) =
    c + Array.fold_left ( + ) 0 (Array.mapi (fun i k -> k * witness.(i)) coeffs)
  in
  let scenario_gen =
    QCheck.Gen.(
      triple
        (array_repeat nsyms (int_range 0 5)) (* hidden witness *)
        (list_size (int_range 0 6) affine_gen) (* store seeds *)
        (pair affine_gen affine_gen)) (* queries *)
  in
  let scenario = QCheck.make scenario_gen in
  (* every seed expression is anchored so it holds (tightly) at the
     witness: e - e(witness) >= 0, occasionally strengthened to an
     equality via add_eq *)
  let build_store witness seeds =
    List.fold_left
      (fun (store, flip) e ->
        let anchored =
          Symdim.sub (to_symdim e) (Symdim.of_int (eval_affine witness e))
        in
        ( (if flip then Constraint_store.add_eq store anchored Symdim.zero
           else Constraint_store.add_ge store anchored),
          not flip ))
      (Constraint_store.empty, false)
      seeds
    |> fst
  in
  [
    qtest
      (QCheck.Test.make ~name:"implies_ge Proved holds at the witness"
         ~count:500 scenario (fun (witness, seeds, (qa, _)) ->
           let store = build_store witness seeds in
           match Decide.implies_ge store (to_symdim qa) with
           | Decide.Unknown -> true
           | Decide.Proved -> eval_affine witness qa >= 0));
    qtest
      (QCheck.Test.make ~name:"prove_eq holds at the witness" ~count:500
         scenario (fun (witness, seeds, (qa, qb)) ->
           let store = build_store witness seeds in
           (not (Decide.prove_eq store (to_symdim qa) (to_symdim qb)))
           || eval_affine witness qa = eval_affine witness qb));
    qtest
      (QCheck.Test.make ~name:"prove_lt never holds at a refuting witness"
         ~count:500 scenario (fun (witness, seeds, (qa, qb)) ->
           let store = build_store witness seeds in
           (not (Decide.prove_lt store (to_symdim qa) (to_symdim qb)))
           || eval_affine witness qa < eval_affine witness qb));
    Alcotest.test_case "row budget degrades to Unknown, not a crash" `Quick
      (fun () ->
        (* A dense pairwise-difference system over 14 positive symbols:
           Fourier-Motzkin elimination squares its row count past the
           internal budget. The query IS entailed (each s_i >= 1, so
           their sum exceeds 13), but the engine must give up with
           Unknown instead of raising Budget_exceeded or diverging. *)
        let n = 14 in
        let s i = Symdim.sym (Printf.sprintf "b%d" i) in
        let store = ref Constraint_store.empty in
        for i = 0 to n - 1 do
          store := Constraint_store.add_positive !store (Printf.sprintf "b%d" i)
        done;
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then
              store :=
                Constraint_store.add_ge !store
                  (Symdim.add (Symdim.sub (s i) (s j)) (Symdim.of_int 5))
          done
        done;
        let total =
          List.fold_left Symdim.add Symdim.zero (List.init n s)
        in
        let query = Symdim.sub total (Symdim.of_int n) in
        check Alcotest.bool "budget fallback" true
          (Decide.implies_ge !store query = Decide.Unknown));
  ]

let suite =
  [
    ("symbolic.rat", rat_tests);
    ("symbolic.symdim", symdim_tests);
    ("symbolic.decide", decide_tests);
    ("symbolic.decide-properties", decide_property_tests);
    ("symbolic.model-arithmetic", model_arithmetic_tests);
  ]
