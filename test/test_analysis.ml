(* Tests for the static-analysis subsystem: graph well-formedness,
   lemma soundness auditing, and e-graph invariant checking. The
   malformed fixtures are assembled with [Graph.unsafe_make], which
   bypasses the builder's checks on purpose. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Entangle_analysis

let check = Alcotest.check
let sd = Symdim.of_int
let shape4 = Shape.of_ints [ 4; 4 ]
let tensor ?dtype ?(shape = shape4) name = Tensor.create ?dtype ~name shape

let codes ds = List.map (fun d -> d.Diagnostic.code) ds
let has_code c ds = List.mem c (codes ds)

let node id op inputs output = { Node.id; op; inputs; output }

(* --- graph well-formedness ---------------------------------------------- *)

let clean_graph () =
  let b = Graph.Builder.create "clean" in
  let x = Graph.Builder.input b "x" shape4 in
  let y = Graph.Builder.add b Op.Neg [ x ] in
  let z = Graph.Builder.add b Op.Exp [ y ] in
  Graph.Builder.output b z;
  Graph.Builder.finish b

let graph_tests =
  [
    Alcotest.test_case "clean graph has no diagnostics" `Quick (fun () ->
        check Alcotest.int "errors" 0
          (Diagnostic.count_errors (Graph_check.check (clean_graph ())));
        check Alcotest.int "warnings" 0
          (Diagnostic.count_warnings (Graph_check.check (clean_graph ()))));
    Alcotest.test_case "cycle is detected" `Quick (fun () ->
        (* a = neg b and b = neg a: producer references form a loop. *)
        let a = tensor "a" and b = tensor "b" in
        let g =
          Graph.unsafe_make ~name:"cyclic" ~inputs:[] ~outputs:[ b ]
            [ node 0 Op.Neg [ b ] a; node 1 Op.Neg [ a ] b ]
        in
        let ds = Graph_check.check g in
        check Alcotest.bool "GRAPH004" true (has_code "GRAPH004" ds);
        check Alcotest.int "nonzero exit" 1 (Lint.exit_code ds));
    Alcotest.test_case "dangling input is detected" `Quick (fun () ->
        (* [ghost] is neither a graph input nor produced by any node. *)
        let x = tensor "x" and ghost = tensor "ghost" and y = tensor "y" in
        let g =
          Graph.unsafe_make ~name:"dangling" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Add [ x; ghost ] y ]
        in
        let ds = Graph_check.check g in
        check Alcotest.bool "GRAPH001" true (has_code "GRAPH001" ds);
        check Alcotest.int "nonzero exit" 1 (Lint.exit_code ds));
    Alcotest.test_case "use before definition is detected" `Quick (fun () ->
        let x = tensor "x" and mid = tensor "mid" and y = tensor "y" in
        let g =
          Graph.unsafe_make ~name:"swapped" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Neg [ mid ] y; node 1 Op.Neg [ x ] mid ]
        in
        let ds = Graph_check.check g in
        check Alcotest.bool "GRAPH001" true (has_code "GRAPH001" ds));
    Alcotest.test_case "stale shape metadata is detected" `Quick (fun () ->
        (* neg of a [4;4] tensor recorded with a [2;2] output. *)
        let x = tensor "x" in
        let y = tensor ~shape:(Shape.of_ints [ 2; 2 ]) "y" in
        let g =
          Graph.unsafe_make ~name:"stale" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Neg [ x ] y ]
        in
        let ds = Graph_check.check g in
        check Alcotest.bool "GRAPH007" true (has_code "GRAPH007" ds);
        check Alcotest.int "nonzero exit" 1 (Lint.exit_code ds));
    Alcotest.test_case "stale dtype metadata is detected" `Quick (fun () ->
        let x = tensor "x" in
        let y = tensor ~dtype:Dtype.I64 "y" in
        let g =
          Graph.unsafe_make ~name:"staled" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Neg [ x ] y ]
        in
        check Alcotest.bool "GRAPH008" true
          (has_code "GRAPH008" (Graph_check.check g)));
    Alcotest.test_case "dead node and unused input are warnings" `Quick
      (fun () ->
        let x = tensor "x" and w = tensor "w" in
        let y = tensor "y" and dead = tensor "dead" in
        let g =
          Graph.unsafe_make ~name:"deadcode" ~inputs:[ x; w ]
            ~outputs:[ y ]
            [ node 0 Op.Neg [ x ] y; node 1 Op.Exp [ x ] dead ]
        in
        let ds = Graph_check.check g in
        check Alcotest.bool "GRAPH005" true (has_code "GRAPH005" ds);
        check Alcotest.bool "GRAPH006" true (has_code "GRAPH006" ds);
        check Alcotest.int "no errors" 0 (Diagnostic.count_errors ds));
    Alcotest.test_case "duplicate producers are detected" `Quick (fun () ->
        let x = tensor "x" and y = tensor "y" in
        let g =
          Graph.unsafe_make ~name:"dup" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Neg [ x ] y; node 1 Op.Exp [ x ] y ]
        in
        check Alcotest.bool "GRAPH002" true
          (has_code "GRAPH002" (Graph_check.check g)));
    Alcotest.test_case "missing output is detected" `Quick (fun () ->
        let x = tensor "x" and elsewhere = tensor "elsewhere" in
        let g =
          Graph.unsafe_make ~name:"noout" ~inputs:[ x ]
            ~outputs:[ elsewhere ] []
        in
        check Alcotest.bool "GRAPH009" true
          (has_code "GRAPH009" (Graph_check.check g)));
    Alcotest.test_case "consumers index matches a full scan" `Quick (fun () ->
        let b = Graph.Builder.create "fan" in
        let x = Graph.Builder.input b "x" shape4 in
        let y = Graph.Builder.add b Op.Neg [ x ] in
        let z = Graph.Builder.add b Op.Add [ x; y ] in
        let w = Graph.Builder.add b Op.Mul [ y; z ] in
        Graph.Builder.output b w;
        let g = Graph.Builder.finish b in
        List.iter
          (fun t ->
            let scanned =
              List.filter
                (fun n -> List.exists (Tensor.equal t) (Node.inputs n))
                (Graph.nodes g)
            in
            check
              Alcotest.(list int)
              (Tensor.name t)
              (List.map Node.id scanned)
              (List.map Node.id (Graph.consumers g t)))
          (Graph.tensors g));
    Alcotest.test_case "Refine.check rejects a malformed graph" `Quick
      (fun () ->
        let x = tensor "x" in
        let y = tensor ~shape:(Shape.of_ints [ 2; 2 ]) "y" in
        let gs =
          Graph.unsafe_make ~name:"bad-gs" ~inputs:[ x ] ~outputs:[ y ]
            [ node 0 Op.Neg [ x ] y ]
        in
        let gd = clean_graph () in
        let raised =
          try
            ignore
              (Entangle.Refine.check ~gs ~gd
                 ~input_relation:Entangle.Relation.empty ());
            false
          with Invalid_argument _ -> true
        in
        check Alcotest.bool "raises" true raised);
  ]

(* --- lemma auditing ------------------------------------------------------ *)

let v = Pattern.v
let p = Pattern.p

let lemma_tests =
  [
    Alcotest.test_case "unbound RHS variable is structural error" `Quick
      (fun () ->
        let l =
          Entangle_lemmas.Lemma.make "bad-unbound"
            [ Rule.make "bad-unbound" (p Op.Neg [ v "x" ]) (v "z") ]
        in
        check Alcotest.bool "LEMMA002" true
          (has_code "LEMMA002" (Lemma_check.structural [ l ])));
    Alcotest.test_case "identity rule is a warning" `Quick (fun () ->
        let l =
          Entangle_lemmas.Lemma.make "noop"
            [ Rule.make "noop" (p Op.Neg [ v "x" ]) (p Op.Neg [ v "x" ]) ]
        in
        check Alcotest.bool "LEMMA003" true
          (has_code "LEMMA003" (Lemma_check.structural [ l ])));
    Alcotest.test_case "bare-variable LHS is structural error" `Quick
      (fun () ->
        let l =
          Entangle_lemmas.Lemma.make "matches-everything"
            [ Rule.make "matches-everything" (v "x") (p Op.Neg [ v "x" ]) ]
        in
        check Alcotest.bool "LEMMA004" true
          (has_code "LEMMA004" (Lemma_check.structural [ l ])));
    Alcotest.test_case "empty lemma is structural error" `Quick (fun () ->
        let l = Entangle_lemmas.Lemma.make "hollow" [] in
        check Alcotest.bool "LEMMA001" true
          (has_code "LEMMA001" (Lemma_check.structural [ l ])));
    Alcotest.test_case "differential audit catches neg(x) -> x" `Quick
      (fun () ->
        let unsound =
          Entangle_lemmas.Lemma.make "bogus-neg-drop"
            [ Rule.make "bogus-neg-drop" (p Op.Neg [ v "x" ]) (v "x") ]
        in
        let diags, stats = Lemma_check.audit ~seed:7 [ unsound ] in
        check Alcotest.bool "LEMMA100" true (has_code "LEMMA100" diags);
        check Alcotest.bool "exercised" true (stats.lemmas_exercised = 1);
        check Alcotest.int "nonzero exit" 1 (Lint.exit_code diags));
    Alcotest.test_case "differential audit catches gelu -> silu" `Quick
      (fun () ->
        (* The two activations approximate each other — close enough to
           fool an eyeball, far enough apart for concrete evaluation. *)
        let unsound =
          Entangle_lemmas.Lemma.make "bogus-gelu-silu"
            [
              Rule.make "bogus-gelu-silu"
                (p Op.Gelu [ v "x" ])
                (p Op.Silu [ v "x" ]);
            ]
        in
        let diags, _ = Lemma_check.audit ~seed:7 [ unsound ] in
        check Alcotest.bool "LEMMA100" true (has_code "LEMMA100" diags));
    Alcotest.test_case "audit reseeds per rule: findings replay in isolation"
      `Quick (fun () ->
        (* A LEMMA100 report must reproduce from its printed coordinates
           alone: the instantiations a lemma sees are a function of the
           audit seed and the (lemma, rule, try) indices, never of how
           many random draws other lemmas consumed. Auditing the lemma
           inside a large corpus and auditing it alone must therefore
           produce byte-identical diagnostics. *)
        let unsound =
          Entangle_lemmas.Lemma.make "bogus-sub-flip"
            [
              Rule.make "bogus-sub-flip"
                (p Op.Sub [ v "x"; v "y" ])
                (p Op.Sub [ v "y"; v "x" ]);
            ]
        in
        let corpus =
          List.filteri (fun i _ -> i < 10) Entangle_lemmas.Registry.all
          @ [ unsound ]
        in
        let in_corpus, _ = Lemma_check.audit ~seed:7 corpus in
        let alone, n = Lemma_check.audit_lemma ~seed:7 unsound in
        check Alcotest.bool "exercised alone" true (n > 0);
        let msgs ds =
          List.filter_map
            (fun d ->
              if d.Diagnostic.code = "LEMMA100" then
                Some (d.Diagnostic.loc, d.Diagnostic.message)
              else None)
            ds
        in
        let findings_alone = msgs alone in
        check Alcotest.bool "found unsound" true (findings_alone <> []);
        let in_corpus_for_lemma =
          List.filter
            (fun (loc, _) ->
              match loc with
              | Diagnostic.Lemma { lemma = "bogus-sub-flip"; _ } -> true
              | _ -> false)
            (msgs in_corpus)
        in
        check Alcotest.bool "identical findings" true
          (findings_alone = in_corpus_for_lemma));
    Alcotest.test_case "sound lemmas pass the differential audit" `Quick
      (fun () ->
        let sound =
          List.filter
            (fun (l : Entangle_lemmas.Lemma.t) ->
              List.mem l.name
                [ "concat-flatten"; "slice-of-slice"; "scale-one" ])
            Entangle_lemmas.Registry.all
        in
        check Alcotest.int "found" 3 (List.length sound);
        let diags, stats = Lemma_check.audit ~seed:11 sound in
        check Alcotest.int "no errors" 0 (Diagnostic.count_errors diags);
        check Alcotest.int "all exercised" 3 stats.lemmas_exercised);
    Alcotest.test_case "registry has no duplicate names" `Quick (fun () ->
        let tbl = Hashtbl.create 128 in
        List.iter
          (fun (l : Entangle_lemmas.Lemma.t) ->
            check Alcotest.bool (l.name ^ " unique") false
              (Hashtbl.mem tbl l.name);
            Hashtbl.replace tbl l.name ())
          Entangle_lemmas.Registry.all);
    Alcotest.test_case "find resolves every registered lemma" `Quick
      (fun () ->
        List.iter
          (fun (l : Entangle_lemmas.Lemma.t) ->
            match Entangle_lemmas.Registry.find l.name with
            | Some found ->
                check Alcotest.string "name" l.name
                  found.Entangle_lemmas.Lemma.name
            | None -> Alcotest.failf "find %s returned None" l.name)
          Entangle_lemmas.Registry.all);
  ]

(* --- e-graph invariants -------------------------------------------------- *)

let egraph_tests =
  [
    Alcotest.test_case "rebuilt e-graph has no diagnostics" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "ea") in
        let b = Egraph.add_leaf g (tensor "eb") in
        ignore (Egraph.add_op g Op.Add [ a; b ]);
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        check Alcotest.int "clean" 0 (List.length (Egraph_check.check g)));
    Alcotest.test_case "pending union is EGRAPH001" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "pa") in
        let b = Egraph.add_leaf g (tensor "pb") in
        ignore (Egraph.union g a b);
        let ds = Egraph_check.check g in
        check Alcotest.bool "EGRAPH001" true (has_code "EGRAPH001" ds);
        let raised =
          try
            Egraph_check.runner_hook g;
            false
          with Egraph_check.Violation _ -> true
        in
        check Alcotest.bool "hook raises" true raised);
    Alcotest.test_case "shape clash inside a class is EGRAPH006" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "sa") in
        let b =
          Egraph.add_leaf g (tensor ~shape:(Shape.of_ints [ 2; 2 ]) "sb")
        in
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        let ds = Egraph_check.check g in
        check Alcotest.bool "EGRAPH006" true (has_code "EGRAPH006" ds);
        check Alcotest.int "nonzero exit" 1 (Lint.exit_code ds));
    Alcotest.test_case "union-time shape conflict is EGRAPH007" `Quick
      (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "ca") in
        let b =
          Egraph.add_leaf g (tensor ~shape:(Shape.of_ints [ 2; 3 ]) "cb")
        in
        check Alcotest.bool "clean before union" false
          (has_code "EGRAPH007" (Egraph_check.check g));
        ignore (Egraph.union g a b);
        Egraph.rebuild g;
        let ds = Egraph_check.check g in
        check Alcotest.bool "EGRAPH007" true (has_code "EGRAPH007" ds);
        (* Both shapes are concrete, so the dropped disagreement is an
           error, not a warning. *)
        check Alcotest.bool "error severity" true
          (List.exists
             (fun d ->
               d.Diagnostic.code = "EGRAPH007"
               && d.Diagnostic.severity = Diagnostic.Error)
             ds));
    Alcotest.test_case "counter or index drift is EGRAPH008/9-clean on a \
                        healthy graph" `Quick (fun () ->
        (* A saturating run over real lemmas must never trip the cached
           num_nodes audit or the family-index audit. *)
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "ha") in
        let n = Egraph.add_op g Op.Neg [ a ] in
        ignore (Egraph.add_op g Op.Exp [ n ]);
        ignore (Egraph.union g n a);
        Egraph.rebuild g;
        let ds = Egraph_check.check g in
        check Alcotest.bool "no EGRAPH008" false (has_code "EGRAPH008" ds);
        check Alcotest.bool "no EGRAPH009" false (has_code "EGRAPH009" ds));
    Alcotest.test_case "runner accepts the invariant hook" `Quick (fun () ->
        let g = Egraph.create () in
        let a = Egraph.add_leaf g (tensor "ra") in
        ignore (Egraph.add_op g Op.Neg [ a ]);
        let rules =
          Entangle_lemmas.Lemma.rules
            (List.filter
               (fun (l : Entangle_lemmas.Lemma.t) ->
                 l.name = "concat-flatten")
               Entangle_lemmas.Registry.all)
        in
        let report =
          Runner.run ~invariant_check:Egraph_check.runner_hook g rules
        in
        check Alcotest.bool "ran" true (report.Runner.iterations >= 0));
    Alcotest.test_case "union-find acyclicity check" `Quick (fun () ->
        let uf = Union_find.create () in
        let a = Union_find.fresh uf and b = Union_find.fresh uf in
        ignore (Union_find.union uf a b);
        check Alcotest.bool "acyclic" true
          (Union_find.check_acyclic uf = Ok ()));
  ]

(* --- diagnostics rendering ----------------------------------------------- *)

let diagnostic_tests =
  [
    Alcotest.test_case "json escaping" `Quick (fun () ->
        let d =
          Diagnostic.error ~code:"GRAPH001"
            (Diagnostic.Graph { graph = "g"; node = None; tensor = None })
            "quote \" backslash \\ newline \n done"
        in
        let json = Diagnostic.to_json d in
        check Alcotest.bool "escaped quote" true
          (String.length json > 0
          && not (String.exists (fun c -> c = '\n') json)));
    Alcotest.test_case "sort puts errors first" `Quick (fun () ->
        let w = Diagnostic.warning ~code:"X2" Diagnostic.Corpus "warn" in
        let e = Diagnostic.error ~code:"X1" Diagnostic.Corpus "err" in
        match Diagnostic.sort [ w; e ] with
        | [ first; _ ] ->
            check Alcotest.string "error first" "X1" first.Diagnostic.code
        | _ -> Alcotest.fail "expected two diagnostics");
  ]

let suite =
  [
    ("analysis:graph", graph_tests);
    ("analysis:lemmas", lemma_tests);
    ("analysis:egraph", egraph_tests);
    ("analysis:diagnostics", diagnostic_tests);
  ]
