(* Integration tests over the model zoo: every bug-free instance's
   graphs validate, the checker proves refinement, the certificate
   replays numerically, and every buggy variant is detected at a
   meaningful operator. *)

open Entangle_ir
open Entangle_models

let check = Alcotest.check

let assert_refines ?(certify = true) inst =
  (match Graph.validate inst.Instance.gs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gs invalid: %s" e);
  (match Graph.validate inst.Instance.gd with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gd invalid: %s" e);
  check Alcotest.bool "input relation clean" true
    (Entangle.Relation.is_clean inst.Instance.input_relation);
  match Instance.check inst with
  | Error f ->
      Alcotest.failf "%s did not refine: %s" inst.Instance.name (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict)
  | Ok s ->
      check Alcotest.bool "output relation clean" true
        (Entangle.Relation.is_clean s.output_relation);
      if certify then
        match
          Entangle.Certify.replay ~env:inst.Instance.env ~gs:inst.Instance.gs
            ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
            ~output_relation:s.output_relation ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: replay failed: %s" inst.Instance.name e

let assert_fails_at op_name inst =
  match Instance.check inst with
  | Ok _ -> Alcotest.failf "%s unexpectedly refines" inst.Instance.name
  | Error f ->
      check Alcotest.string "failure operator" op_name
        (Op.name (Node.op f.operator))

let correct_models =
  [
    Alcotest.test_case "regression with gradient accumulation" `Quick (fun () ->
        assert_refines (Regression.build ()));
    Alcotest.test_case "regression with 4 microbatches" `Quick (fun () ->
        assert_refines (Regression.build ~microbatches:4 ()));
    Alcotest.test_case "GPT TP" `Quick (fun () ->
        assert_refines (Gpt.build ~sp:false ~vp:false ()));
    Alcotest.test_case "GPT TP+SP+VP" `Quick (fun () ->
        assert_refines (Gpt.build ()));
    Alcotest.test_case "GPT degree 4" `Quick (fun () ->
        assert_refines (Gpt.build ~degree:4 ()));
    Alcotest.test_case "GPT two layers" `Slow (fun () ->
        assert_refines (Gpt.build ~layers:2 ()));
    Alcotest.test_case "GPT more heads than ranks" `Quick (fun () ->
        assert_refines (Gpt.build ~heads:4 ~degree:2 ()));
    Alcotest.test_case "Llama-3 TP (HLO dialect)" `Quick (fun () ->
        assert_refines (Llama.build ()));
    Alcotest.test_case "Qwen2 TP (vLLM dialect)" `Quick (fun () ->
        assert_refines (Qwen2.build ()));
    Alcotest.test_case "ByteDance MoE TP+SP+EP" `Quick (fun () ->
        assert_refines (Moe.build ()));
    Alcotest.test_case "ByteDance MoE backward" `Quick (fun () ->
        assert_refines (Moe.build_backward ()));
    Alcotest.test_case "MoE one expert per rank" `Quick (fun () ->
        assert_refines (Moe.build ~experts:2 ~degree:2 ()));
    Alcotest.test_case "Llama-3 cannot partition 8 heads 6 ways" `Quick
      (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Llama.build ~heads:8 ~degree:6 ()); false
           with Invalid_argument _ -> true));
  ]

let buggy_models =
  [
    Alcotest.test_case "bug 1 localizes at rope" `Quick (fun () ->
        assert_fails_at "rope" (Moe.build ~bug:Moe.Rope_wrong_offset ()));
    Alcotest.test_case "bug 2 localizes at the aux consumer" `Quick (fun () ->
        assert_fails_at "mul" (Moe.build ~bug:Moe.Aux_loss_unscaled ()));
    Alcotest.test_case "bug 4 localizes at the first expert matmul" `Quick
      (fun () -> assert_fails_at "matmul" (Moe.build ~bug:Moe.Experts_sharded ()));
    Alcotest.test_case "bug 6 localizes at the loss" `Quick (fun () ->
        assert_fails_at "mse_loss" (Regression.build ~buggy:true ()));
    Alcotest.test_case "bug 7 localizes at the residual add" `Quick (fun () ->
        assert_fails_at "add"
          (Transformer.build
             ~arch:(Transformer.gpt_arch ~heads:2 ~vocab:None ())
             ~layers:1 ~degree:2 ~bug:Transformer.Missing_allreduce
             ~name:"bug7" ~family:Entangle_lemmas.Registry.Gpt ()));
  ]

let bug_catalog =
  [
    Alcotest.test_case "all nine case-study bugs are detected" `Slow (fun () ->
        List.iter
          (fun case ->
            match Bugs.run case with
            | Bugs.Detected _ -> ()
            | Bugs.Missed ->
                Alcotest.failf "bug %d (%s) missed" case.Bugs.id
                  case.Bugs.description)
          (Bugs.all ()));
    Alcotest.test_case "expectation bugs hold under plain refinement" `Quick
      (fun () ->
        (* Bugs 5/8/9 are expectation violations: plain refinement must
           still succeed (the value IS reconstructible, just not the way
           the implementation assumed). *)
        List.iter
          (fun id ->
            let case = Bugs.case id in
            let inst = case.Bugs.instance in
            match
              Entangle.Refine.check ~gs:inst.Instance.gs ~gd:inst.Instance.gd
                ~input_relation:inst.Instance.input_relation ()
            with
            | Ok _ -> ()
            | Error f ->
                Alcotest.failf "bug %d: plain refinement failed: %s" id (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict))
          [ 5; 8; 9 ]);
    Alcotest.test_case "bug-free pad/slice round trip refines" `Quick (fun () ->
        assert_refines (Bugs.pad_slice_model ~buggy:false));
    Alcotest.test_case "bug ids are 1..9" `Quick (fun () ->
        let ids = List.map (fun c -> c.Bugs.id) (Bugs.all ()) in
        check (Alcotest.list Alcotest.int) "ids" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] ids);
  ]

let lowering_tests =
  [
    Alcotest.test_case "sharding records concat relation" `Quick (fun () ->
        let open Entangle_symbolic in
        let ctx = Entangle_dist.Lower.create ~name:"t" ~degree:2 () in
        let seq = Tensor.create ~name:"x" [ Symdim.of_int 8; Symdim.of_int 4 ] in
        let shards = Entangle_dist.Lower.shard_input ctx seq ~dim:0 in
        check Alcotest.int "two shards" 2 (List.length shards);
        let _, rel = Entangle_dist.Lower.finish ctx in
        match Entangle.Relation.find rel seq with
        | [ Expr.App (Op.Concat { dim = 0 }, _) ] -> ()
        | _ -> Alcotest.fail "expected concat mapping");
    Alcotest.test_case "replication records one mapping per rank" `Quick
      (fun () ->
        let open Entangle_symbolic in
        let ctx = Entangle_dist.Lower.create ~name:"t" ~degree:3 () in
        let seq = Tensor.create ~name:"w" [ Symdim.of_int 4 ] in
        let _ = Entangle_dist.Lower.replicate_input ctx seq in
        let _, rel = Entangle_dist.Lower.finish ctx in
        check Alcotest.int "three mappings" 3
          (List.length (Entangle.Relation.find rel seq)));
    Alcotest.test_case "indivisible shard raises" `Quick (fun () ->
        let open Entangle_symbolic in
        let ctx = Entangle_dist.Lower.create ~name:"t" ~degree:3 () in
        let seq = Tensor.create ~name:"x" [ Symdim.of_int 8 ] in
        check Alcotest.bool "raises" true
          (try ignore (Entangle_dist.Lower.shard_input ctx seq ~dim:0); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "partition offsets" `Quick (fun () ->
        let open Entangle_symbolic in
        let offs = Entangle_dist.Partition.offsets (Symdim.of_int 8) ~parts:4 in
        check Alcotest.int "four" 4 (List.length offs);
        let starts = List.map (fun (s, _) -> Option.get (Symdim.to_int s)) offs in
        check (Alcotest.list Alcotest.int) "starts" [ 0; 2; 4; 6 ] starts);
    Alcotest.test_case "strategy round trips" `Quick (fun () ->
        let open Entangle_dist in
        List.iter
          (fun s ->
            check Alcotest.bool (Strategy.to_string s) true
              (Strategy.of_string (Strategy.abbreviation s) = Some s))
          Strategy.all);
  ]

let zoo_tests =
  [
    Alcotest.test_case "every zoo name resolves" `Quick (fun () ->
        List.iter
          (fun name ->
            check Alcotest.bool name true (Zoo.by_name name <> None))
          Zoo.names;
        check Alcotest.bool "unknown rejected" true (Zoo.by_name "nope" = None));
    Alcotest.test_case "fig3 workload contains six instances" `Quick (fun () ->
        check Alcotest.int "count" 6 (List.length (Zoo.fig3_instances ())));
    Alcotest.test_case "checking is deterministic" `Quick (fun () ->
        let run () =
          let inst = Regression.build ~microbatches:4 () in
          match Instance.check inst with
          | Ok s ->
              Fmt.str "%a" Entangle.Relation.pp s.output_relation
              |> String.map (fun c -> if c = '\n' then ' ' else c)
          | Error _ -> "failed"
        in
        (* Tensor names repeat across builds even though ids differ, so
           the printed relation must be identical run to run. *)
        check Alcotest.string "same relation" (run ()) (run ()));
    Alcotest.test_case "MoE scales to 8 experts on 4 ranks" `Slow (fun () ->
        assert_refines ~certify:false (Moe.build ~experts:8 ~degree:4 ()));
    Alcotest.test_case "GPT degree 8 refines" `Slow (fun () ->
        assert_refines ~certify:false (Gpt.build ~degree:8 ()));
  ]

let suite =
  [
    ("models.correct", correct_models);
    ("models.buggy", buggy_models);
    ("models.bug-catalog", bug_catalog);
    ("models.lowering", lowering_tests);
    ("models.zoo", zoo_tests);
  ]
