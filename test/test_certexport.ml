(* Tests for the portable certificate bundle (lib/certexport): the
   export -> parse round trip, the tamper matrix (every defense layer
   rejects its mutation with its own structured CERT code), the minimal
   verifier's semantic checks (completeness, cleanliness, scope, shape,
   concrete replay), and the [Certify.replay] mismatch accumulator the
   verifier shares its bounded-reporting discipline with. *)

open Entangle_models
open Entangle_ir
module CE = Entangle_certexport
module Bundle = CE.Bundle
module Verify = CE.Verify
module Cert_error = CE.Cert_error

let check = Alcotest.check

(* --- fixtures ----------------------------------------------------------- *)

(* One checked zoo instance, exported once: the reference bundle the
   round-trip and tamper tests mutate. *)
let reference =
  lazy
    (let inst = Option.get (Zoo.by_name "regression") in
     match Instance.check inst with
     | Error _ -> Alcotest.fail "regression must refine"
     | Ok success -> (
         match
           Entangle.Cert_export.bundle ~producer:"test-certexport"
             ~gs:inst.Instance.gs ~gd:inst.Instance.gd ~env:inst.Instance.env
             ~input_relation:inst.Instance.input_relation success
         with
         | Error e -> Alcotest.failf "export failed: %s" e
         | Ok b -> b))

let reference_text = lazy (Bundle.to_string (Lazy.force reference))
let code_of_error (e : Cert_error.t) = Cert_error.code_string e.Cert_error.code

let code_of text =
  match Verify.check_string text with
  | Ok _ -> "accepted"
  | Error e -> code_of_error e

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else at (i + 1)
  in
  at 0

let contains hay needle = find_sub hay needle <> None

let replace_first hay needle replacement =
  match find_sub hay needle with
  | None -> Alcotest.failf "fixture: %S not found in bundle text" needle
  | Some i ->
      String.sub hay 0 i ^ replacement
      ^ String.sub hay
          (i + String.length needle)
          (String.length hay - i - String.length needle)

let mutate_at pos f text =
  let b = Bytes.of_string text in
  Bytes.set b pos (f (Bytes.get b pos));
  Bytes.to_string b

(* A hand-built pair small enough to aim each semantic check: gs is
   [y = add x x] over a concrete [4] vector; gd computes the same sum
   as [yd] and a shape-[8] concat as [wd] (both outputs), plus a
   sabotage variant where [yd] is [sub xd xd] — structurally identical,
   numerically zero. *)
type tiny = {
  t_gs : Graph.t;
  t_gd : Graph.t;
  t_x : Tensor.t;
  t_y : Tensor.t;
  t_xd : Tensor.t;
  t_yd : Tensor.t;
  t_wd : Tensor.t;
}

let tiny ?(sound = true) ?(dim = Entangle_symbolic.Symdim.of_int 4) () =
  let b = Graph.Builder.create "tiny-seq" in
  let x = Graph.Builder.input b "x" [ dim ] in
  let y = Graph.Builder.add b ~name:"y" Op.Add [ x; x ] in
  Graph.Builder.output b y;
  let gs = Graph.Builder.finish b in
  let d = Graph.Builder.create "tiny-dist" in
  let xd = Graph.Builder.input d "xd" [ dim ] in
  let yd =
    Graph.Builder.add d ~name:"yd" (if sound then Op.Add else Op.Sub) [ xd; xd ]
  in
  let wd = Graph.Builder.add d ~name:"wd" (Op.Concat { dim = 0 }) [ xd; xd ] in
  Graph.Builder.output d yd;
  Graph.Builder.output d wd;
  let gd = Graph.Builder.finish d in
  { t_gs = gs; t_gd = gd; t_x = x; t_y = y; t_xd = xd; t_yd = yd; t_wd = wd }

let tiny_bundle ?(env = []) ?outputs ?operators (t : tiny) =
  let outputs =
    match outputs with None -> [ (t.t_y, [ Expr.leaf t.t_yd ]) ] | Some o -> o
  in
  let operators =
    match operators with
    | None -> [ { Bundle.op_output = "y"; op_mappings = [ Expr.leaf t.t_yd ] } ]
    | Some ops -> ops
  in
  Bundle.make ~producer:"test-tiny" ~gs:t.t_gs ~gd:t.t_gd ~env
    ~inputs:[ (t.t_x, [ Expr.leaf t.t_xd ]) ]
    ~outputs ~operators ()

let expect_code what expected result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected %s, got acceptance" what expected
  | Error e -> check Alcotest.string (what ^ " code") expected (code_of_error e)

(* --- round trip --------------------------------------------------------- *)

let roundtrip_tests =
  [
    Alcotest.test_case "export -> parse preserves id and statement" `Quick
      (fun () ->
        let b = Lazy.force reference in
        match Bundle.of_string (Lazy.force reference_text) with
        | Error e -> Alcotest.failf "re-parse: %a" Cert_error.pp e
        | Ok b' ->
            check Alcotest.string "id" (Bundle.id b) (Bundle.id b');
            check
              Alcotest.(list (pair string string))
              "statement fingerprints"
              (Bundle.statement_fields (Bundle.statement b))
              (Bundle.statement_fields (Bundle.statement b'));
            check Alcotest.string "producer" b.Bundle.producer
              b'.Bundle.producer;
            check Alcotest.int "operator entries"
              (List.length b.Bundle.operators)
              (List.length b'.Bundle.operators));
    Alcotest.test_case "exported bundle passes the minimal verifier" `Quick
      (fun () ->
        match Verify.check_string (Lazy.force reference_text) with
        | Error e -> Alcotest.failf "verify: %a" Cert_error.pp e
        | Ok r ->
            check Alcotest.string "report id"
              (Bundle.id (Lazy.force reference))
              r.Verify.id;
            check Alcotest.bool "operators checked" true (r.Verify.operators > 0);
            check Alcotest.bool "outputs replayed" true
              (r.Verify.outputs_checked > 0);
            check Alcotest.bool "expressions evaluated" true
              (r.Verify.exprs_replayed > 0));
    Alcotest.test_case "serialization is deterministic" `Quick (fun () ->
        let b = Lazy.force reference in
        check Alcotest.string "same bytes" (Bundle.to_string b)
          (Bundle.to_string b));
    Alcotest.test_case "sound hand-built bundle verifies" `Quick (fun () ->
        match Verify.check (tiny_bundle (tiny ())) with
        | Ok r -> check Alcotest.int "one output" 1 r.Verify.outputs_checked
        | Error e -> Alcotest.failf "tiny bundle rejected: %a" Cert_error.pp e);
  ]

(* --- the tamper matrix -------------------------------------------------- *)

let tamper_tests =
  [
    Alcotest.test_case "truncation is CERT001" `Quick (fun () ->
        let text = Lazy.force reference_text in
        check Alcotest.string "half the bytes" "CERT001"
          (code_of (String.sub text 0 (String.length text / 2)));
        check Alcotest.string "empty" "CERT001" (code_of "");
        check Alcotest.string "unbalanced" "CERT001" (code_of "(entangle-cert"));
    Alcotest.test_case "foreign document is CERT001" `Quick (fun () ->
        check Alcotest.string "wrong header" "CERT001"
          (code_of "(something-else (schema 1))"));
    Alcotest.test_case "version skew is CERT002" `Quick (fun () ->
        let text = Lazy.force reference_text in
        check Alcotest.string "future schema" "CERT002"
          (code_of (replace_first text "(schema 1)" "(schema 99)")));
    Alcotest.test_case "structural damage is CERT003" `Quick (fun () ->
        check Alcotest.string "manifest without statement" "CERT003"
          (code_of "(entangle-cert (schema 1) (producer x) (manifest (id h)))"));
    Alcotest.test_case "section bit-flip is CERT004" `Quick (fun () ->
        (* flip one digit inside a section payload: the per-section
           content digest must notice a single byte *)
        let text = Lazy.force reference_text in
        match find_sub text "(section relations" with
        | None -> Alcotest.fail "no relations section in reference bundle"
        | Some i ->
            let rec digit j =
              if j >= String.length text then
                Alcotest.fail "no digit in relations section"
              else
                match text.[j] with '0' .. '9' -> j | _ -> digit (j + 1)
            in
            let j = digit (i + String.length "(section relations") in
            let flipped =
              mutate_at j
                (fun c -> if c = '9' then '8' else Char.chr (Char.code c + 1))
                text
            in
            check Alcotest.string "payload digit flipped" "CERT004"
              (code_of flipped));
    Alcotest.test_case "statement rebinding is CERT005" `Quick (fun () ->
        (* alter one hex digit of the manifest's gs fingerprint: every
           section still digests clean, but the bundle now claims to
           certify a different statement *)
        let text = Lazy.force reference_text in
        match find_sub text "(statement" with
        | None -> Alcotest.fail "no statement in reference bundle"
        | Some i -> (
            let rest = String.sub text i (String.length text - i) in
            match find_sub rest "(gs " with
            | None -> Alcotest.fail "no gs fingerprint"
            | Some off ->
                let rebound =
                  mutate_at
                    (i + off + 4)
                    (fun c -> if c = '0' then '1' else '0')
                    text
                in
                check Alcotest.string "gs fingerprint altered" "CERT005"
                  (code_of rebound)));
    Alcotest.test_case "single-byte corruption never aliases to acceptance"
      `Quick (fun () ->
        (* a sweep of single-byte mutations across the bundle: whatever
           the byte hits — framing, a digest, a section payload, even
           inter-token whitespace — the result must be rejected with
           some CERT code, never accepted *)
        let text = Lazy.force reference_text in
        let n = String.length text in
        List.iter
          (fun percent ->
            let pos = n * percent / 100 in
            let mutated =
              mutate_at pos (fun c -> if c = 'x' then 'y' else 'x') text
            in
            if mutated <> text then
              check Alcotest.bool
                (Fmt.str "byte %d/%d rejected" pos n)
                true
                (code_of mutated <> "accepted"))
          [ 5; 15; 25; 35; 45; 55; 65; 75; 85; 95 ]);
  ]

(* --- the minimal verifier's semantic checks ------------------------------ *)

let verifier_tests =
  [
    Alcotest.test_case "missing operator entry is CERT006" `Quick (fun () ->
        expect_code "no operator entries" "CERT006"
          (Verify.check (tiny_bundle ~operators:[] (tiny ()))));
    Alcotest.test_case "operator entry with no mappings is CERT006" `Quick
      (fun () ->
        expect_code "empty mapping list" "CERT006"
          (Verify.check
             (tiny_bundle
                ~operators:[ { Bundle.op_output = "y"; op_mappings = [] } ]
                (tiny ()))));
    Alcotest.test_case "unbound env symbol is CERT006" `Quick (fun () ->
        (* the same pair over a symbolic dimension: sound with n bound,
           incomplete with the env stripped *)
        let t = tiny ~dim:(Entangle_symbolic.Symdim.sym "n") () in
        (match Verify.check (tiny_bundle ~env:[ ("n", 4) ] t) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "bound env rejected: %a" Cert_error.pp e);
        expect_code "env stripped" "CERT006"
          (Verify.check (tiny_bundle ~env:[] t)));
    Alcotest.test_case "unclean mapping expression is CERT007" `Quick
      (fun () ->
        let t = tiny () in
        expect_code "add in an output mapping" "CERT007"
          (Verify.check
             (tiny_bundle
                ~outputs:
                  [
                    ( t.t_y,
                      [ Expr.app Op.Add [ Expr.leaf t.t_yd; Expr.leaf t.t_yd ] ]
                    );
                  ]
                t)));
    Alcotest.test_case "out-of-scope leaf is CERT008" `Quick (fun () ->
        let t = tiny () in
        let ghost =
          Tensor.create ~name:"ghost" [ Entangle_symbolic.Symdim.of_int 4 ]
        in
        expect_code "fabricated tensor in an output mapping" "CERT008"
          (Verify.check
             (tiny_bundle ~outputs:[ (t.t_y, [ Expr.leaf ghost ]) ] t)));
    Alcotest.test_case "shape disagreement is CERT009" `Quick (fun () ->
        let t = tiny () in
        expect_code "output mapped to the shape-[8] concat" "CERT009"
          (Verify.check
             (tiny_bundle ~outputs:[ (t.t_y, [ Expr.leaf t.t_wd ]) ] t)));
    Alcotest.test_case "replicating incompatible inputs is CERT009" `Quick
      (fun () ->
        (* The input relation unions distributed inputs that appear as
           bare leaves of one mapping list into a replication group
           (transitively across bindings). If grouped tensors disagree
           on dtype, replay must reject the bundle with a precise code
           instead of reusing one member's generated value for a
           differently-typed tensor and crashing downstream. Shapes
           agree here, so the static per-target checks all pass; only
           the group-compatibility check can catch the mix. *)
        let sd = Entangle_symbolic.Symdim.of_int in
        let b = Graph.Builder.create "seq" in
        let x = Graph.Builder.input b "x" [ sd 4 ] in
        let y = Graph.Builder.add b ~name:"y" Op.Add [ x; x ] in
        Graph.Builder.output b y;
        let gs = Graph.Builder.finish b in
        let d = Graph.Builder.create "dist" in
        let xd = Graph.Builder.input d "xd" [ sd 4 ] in
        let zd = Graph.Builder.input d ~dtype:Dtype.I64 "zd" [ sd 4 ] in
        let yd = Graph.Builder.add d ~name:"yd" Op.Add [ xd; xd ] in
        Graph.Builder.output d yd;
        let gd = Graph.Builder.finish d in
        ignore zd;
        let bundle =
          Bundle.make ~producer:"test-replication" ~gs ~gd ~env:[]
            ~inputs:[ (x, [ Expr.leaf xd; Expr.leaf zd ]) ]
            ~outputs:[ (y, [ Expr.leaf yd ]) ]
            ~operators:
              [ { Bundle.op_output = "y"; op_mappings = [ Expr.leaf yd ] } ]
            ()
        in
        let result = Verify.check bundle in
        expect_code "float/int replication group" "CERT009" result;
        match result with
        | Ok _ -> assert false
        | Error e ->
            check Alcotest.bool "detail names the dtype disagreement" true
              (contains e.Cert_error.detail "dtypes differ"));
    Alcotest.test_case "numerically wrong certificate is CERT010" `Quick
      (fun () ->
        (* gd's yd is sub xd xd: same names, shapes and wiring as the
           sound variant, but replay values are zero where gs computes
           2x — only concrete replay can catch this *)
        let result = Verify.check (tiny_bundle (tiny ~sound:false ())) in
        expect_code "sub-for-add sabotage" "CERT010" result;
        match result with
        | Ok _ -> assert false
        | Error e ->
            check Alcotest.bool "detail names the failing output" true
              (contains e.Cert_error.detail "output y"));
  ]

(* --- Certify.replay's mismatch accumulator ------------------------------- *)

(* Two independently wrong outputs: with the historical default
   (max_mismatches = 1) only the first is reported; raising the bound
   accumulates both into one message. *)
let certify_tests =
  let sd = Entangle_symbolic.Symdim.of_int in
  let build_pair ~sabotage () =
    let b = Graph.Builder.create "seq" in
    let x = Graph.Builder.input b "x" [ sd 4 ] in
    let y = Graph.Builder.add b ~name:"y" Op.Add [ x; x ] in
    let z = Graph.Builder.add b ~name:"z" Op.Mul [ x; x ] in
    Graph.Builder.output b y;
    Graph.Builder.output b z;
    let gs = Graph.Builder.finish b in
    let d = Graph.Builder.create "dist" in
    let xd = Graph.Builder.input d "xd" [ sd 4 ] in
    let op_y = if sabotage then Op.Sub else Op.Add in
    let op_z = if sabotage then Op.Sub else Op.Mul in
    let yd = Graph.Builder.add d ~name:"yd" op_y [ xd; xd ] in
    let zd = Graph.Builder.add d ~name:"zd" op_z [ xd; xd ] in
    Graph.Builder.output d yd;
    Graph.Builder.output d zd;
    let gd = Graph.Builder.finish d in
    let input_relation = Entangle.Relation.of_list [ (x, Expr.leaf xd) ] in
    let output_relation =
      Entangle.Relation.of_list [ (y, Expr.leaf yd); (z, Expr.leaf zd) ]
    in
    (gs, gd, input_relation, output_relation)
  in
  let count_mismatches message =
    (* each mismatch renders one "differs from the sequential value" *)
    let needle = "differs from the sequential value" in
    let rec go acc from =
      match
        find_sub (String.sub message from (String.length message - from)) needle
      with
      | None -> acc
      | Some i -> go (acc + 1) (from + i + String.length needle)
    in
    go 0 0
  in
  let replay ?max_mismatches (gs, gd, input_relation, output_relation) =
    Entangle.Certify.replay ?max_mismatches
      ~env:(Interp.env_of_list [])
      ~gs ~gd ~input_relation ~output_relation ()
  in
  [
    Alcotest.test_case "default replay stops at the first mismatch" `Quick
      (fun () ->
        match replay (build_pair ~sabotage:true ()) with
        | Ok () -> Alcotest.fail "sabotaged relation replayed clean"
        | Error message ->
            check Alcotest.int "one mismatch reported" 1
              (count_mismatches message));
    Alcotest.test_case "raised bound accumulates every mismatch" `Quick
      (fun () ->
        match replay ~max_mismatches:8 (build_pair ~sabotage:true ()) with
        | Ok () -> Alcotest.fail "sabotaged relation replayed clean"
        | Error message ->
            check Alcotest.int "both mismatches reported" 2
              (count_mismatches message);
            check Alcotest.bool "messages joined with a separator" true
              (contains message "; "));
    Alcotest.test_case "sound relation still replays clean" `Quick (fun () ->
        match replay ~max_mismatches:8 (build_pair ~sabotage:false ()) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "clean replay failed: %s" e);
  ]

let suite =
  [
    ("certexport.roundtrip", roundtrip_tests);
    ("certexport.tamper", tamper_tests);
    ("certexport.verifier", verifier_tests);
    ("certexport.certify", certify_tests);
  ]
