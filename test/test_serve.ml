(* Wire-protocol units for the resident checker service: framing edge
   cases, handshake negotiation, lossless request/response round-trips
   (including the hex-float statistics encoding), and a small
   end-to-end session against a server running in its own domain. The
   heavyweight fidelity and warm-cache acceptance runs live in the
   @serve-smoke bench alias; these tests pin the grammar itself. *)

module Sexp = Entangle_ir.Sexp
module P = Entangle_serve.Protocol
module Srv = Entangle_serve.Server
module Cl = Entangle_serve.Client

let check = Alcotest.check

(* --- framing ------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "entangle-test-serve" ".frame" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_frames_of_raw raw k =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc raw;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic))

let framing_tests =
  [
    Alcotest.test_case "frames round-trip, including empty payloads" `Quick
      (fun () ->
        with_temp_file (fun path ->
            let payloads = [ "(ping)"; ""; String.make 4096 'x'; "a\nb\nc" ] in
            let oc = open_out_bin path in
            List.iter (P.write_frame oc) payloads;
            close_out oc;
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                List.iter
                  (fun expected ->
                    match P.read_frame ic with
                    | Ok got -> check Alcotest.string "payload" expected got
                    | Error e -> Alcotest.failf "read_frame: %s" e)
                  payloads;
                (* Clean EOF after the last frame is an error, not a
                   hang or an empty frame. *)
                check Alcotest.bool "EOF is an error" true
                  (Result.is_error (P.read_frame ic)))));
    Alcotest.test_case "garbage length prefixes are rejected" `Quick (fun () ->
        let rejected raw =
          read_frames_of_raw raw (fun ic -> Result.is_error (P.read_frame ic))
        in
        check Alcotest.bool "non-digit prefix" true (rejected "abc\n(ping)");
        check Alcotest.bool "negative length" true (rejected "-5\nhello");
        check Alcotest.bool "missing newline" true (rejected "12");
        check Alcotest.bool "empty stream" true (rejected ""));
    Alcotest.test_case "oversized lengths are refused without reading" `Quick
      (fun () ->
        (* Both an 11-digit prefix and a valid number above the cap
           must be refused before any payload is consumed. *)
        let refused raw =
          read_frames_of_raw raw (fun ic -> Result.is_error (P.read_frame ic))
        in
        check Alcotest.bool "too many digits" true (refused "99999999999\nx");
        check Alcotest.bool "above max_frame_bytes" true
          (refused (string_of_int (P.max_frame_bytes + 1) ^ "\nx")));
    Alcotest.test_case "EOF mid-payload is an error" `Quick (fun () ->
        read_frames_of_raw "10\nabc" (fun ic ->
            check Alcotest.bool "truncated payload" true
              (Result.is_error (P.read_frame ic))));
  ]

(* --- handshake ---------------------------------------------------------- *)

let handshake_tests =
  [
    Alcotest.test_case "hello round-trips" `Quick (fun () ->
        let h = { P.protocol = P.protocol_version; client = "test client" } in
        match P.hello_of_string (P.hello_to_string h) with
        | Ok h' ->
            check Alcotest.int "protocol" h.P.protocol h'.P.protocol;
            check Alcotest.string "client" h.P.client h'.P.client
        | Error e -> Alcotest.failf "hello_of_string: %s" e);
    Alcotest.test_case "welcome, reject and busy round-trip" `Quick (fun () ->
        let cases =
          [
            P.Welcome { protocol = 1; server = "entangle-serve" };
            P.Rejected
              { expected = 1; got = 2; message = "upgrade the older side" };
            P.Busy { max_clients = 64; message = "admission limit reached" };
          ]
        in
        List.iter
          (fun w ->
            match P.welcome_of_string (P.welcome_to_string w) with
            | Ok w' -> check Alcotest.bool "welcome" true (w = w')
            | Error e -> Alcotest.failf "welcome_of_string: %s" e)
          cases);
    Alcotest.test_case "malformed hello is an error" `Quick (fun () ->
        check Alcotest.bool "not a hello" true
          (Result.is_error (P.hello_of_string "(pang)"));
        check Alcotest.bool "not an sexp" true
          (Result.is_error (P.hello_of_string "((")));
  ]

(* --- request / response grammar ---------------------------------------- *)

let roundtrip_request ~id req =
  match P.request_of_string (P.request_to_string ~id req) with
  | Ok (id', req') ->
      check Alcotest.int "request id" id id';
      check Alcotest.bool "request body" true (req = req')
  | Error e -> Alcotest.failf "request_of_string: %s" e

let roundtrip_response ~id resp =
  match P.response_of_string (P.response_to_string ~id resp) with
  | Ok (id', resp') ->
      check Alcotest.int "response id" id id';
      check Alcotest.bool "response body" true (resp = resp')
  | Error e -> Alcotest.failf "response_of_string: %s" e

let sample_stats =
  {
    Entangle.Refine.operators_processed = 7;
    saturation_iterations = 12;
    egraph_nodes_peak = 345;
    egraph_classes_peak = 123;
    matches_examined = 9001;
    unions_applied = 42;
    rule_hits = [ ("matmul-assoc", 3); ("sum of slices", 1) ];
    retries = 2;
    budget_trips = 1;
    cache_hits = 4;
    cache_misses = 3;
    cache_replays_failed = 1;
    (* Not representable in decimal: the hex-float rendering must
       carry it across the wire bit-for-bit. *)
    wall_time_s = 0.1 +. 0.2;
  }

let grammar_tests =
  [
    Alcotest.test_case "simple requests round-trip" `Quick (fun () ->
        List.iteri
          (fun i req -> roundtrip_request ~id:i req)
          [ P.Ping; P.Describe; P.Cache_stats; P.Cache_clear; P.Shutdown ]);
    Alcotest.test_case "check requests round-trip structurally" `Quick
      (fun () ->
        let graph name =
          Sexp.list [ Sexp.atom "graph"; Sexp.atom name ]
        in
        let reqs =
          [
            P.Check
              {
                options = P.default_options;
                gs = graph "gs";
                gd = graph "gd";
                relation = Sexp.list [ Sexp.atom "relation" ];
              };
            P.Check
              {
                options =
                  {
                    P.family = Some "regression";
                    namespace = Some "tenant a";
                    jobs = Some 4;
                    keep_going = true;
                  };
                gs = graph "gs";
                gd = graph "gd";
                relation = Sexp.list [ Sexp.atom "relation" ];
              };
          ]
        in
        List.iteri (fun i req -> roundtrip_request ~id:(100 + i) req) reqs);
    Alcotest.test_case "batch and stats requests round-trip" `Quick (fun () ->
        let graph name = Sexp.list [ Sexp.atom "graph"; Sexp.atom name ] in
        let instance name =
          {
            P.gs = graph (name ^ "-gs");
            gd = graph (name ^ "-gd");
            relation = Sexp.list [ Sexp.atom "relation"; Sexp.atom name ];
          }
        in
        roundtrip_request ~id:9 P.Server_stats;
        roundtrip_request ~id:10
          (P.Check_batch { options = P.default_options; instances = [] });
        roundtrip_request ~id:11
          (P.Check_batch
             {
               options = { P.default_options with P.family = Some "regression" };
               instances = [ instance "a"; instance "b"; instance "c" ];
             }));
    Alcotest.test_case "statistics round-trip losslessly" `Quick (fun () ->
        match P.stats_of_sexp (P.stats_to_sexp sample_stats) with
        | Ok s ->
            check Alcotest.bool "bit-for-bit, wall time included" true
              (s = sample_stats)
        | Error e -> Alcotest.failf "stats_of_sexp: %s" e);
    Alcotest.test_case "responses round-trip" `Quick (fun () ->
        let responses =
          [
            P.Pong;
            P.Bye;
            P.Described (P.describe_json ~server:"test");
            P.Cache_cleared 17;
            P.Error_reply { code = P.Bad_request; message = "no such family" };
            P.Error_reply { code = P.Server_internal; message = "boom" };
            P.Cache_stats_reply
              {
                dir = "/tmp/cache";
                entries = 3;
                bytes = 1234;
                shards = 2;
                quarantined = 1;
                max_bytes = Some 4096;
                max_age_s = Some 60.;
                evicted_entries = 5;
                evicted_bytes = 678;
                expired_entries = 2;
              };
            P.Cache_stats_reply
              {
                dir = "/tmp/cache";
                entries = 0;
                bytes = 0;
                shards = 0;
                quarantined = 0;
                max_bytes = None;
                max_age_s = None;
                evicted_entries = 0;
                evicted_bytes = 0;
                expired_entries = 0;
              };
            P.Checked
              {
                exit_code = 0;
                verdict = "refines";
                report = "refines: 7 operators\nwith a second line";
                output_relation =
                  Some (Sexp.list [ Sexp.atom "relation" ]);
                stats = sample_stats;
              };
            P.Checked
              {
                exit_code = 1;
                verdict = "unmapped";
                report = "operator 3 has no counterpart";
                output_relation = None;
                stats = sample_stats;
              };
            P.Server_stats_reply
              {
                accepted = 12;
                active = 3;
                served = 40;
                rejected_busy = 2;
                timed_out = 1;
                drained = 0;
                accept_failures = 1;
                max_clients = 64;
              };
            P.Batch_done { count = 0 };
            P.Batch_done { count = 7 };
            (* Batch items carry a full nested response. *)
            P.Batch_item
              {
                index = 0;
                body =
                  P.Checked
                    {
                      exit_code = 0;
                      verdict = "refines";
                      report = "refines";
                      output_relation = None;
                      stats = sample_stats;
                    };
              };
            P.Batch_item
              {
                index = 3;
                body =
                  P.Error_reply
                    { code = P.Bad_request; message = "unreadable graph" };
              };
          ]
        in
        List.iteri (fun i resp -> roundtrip_response ~id:i resp) responses);
    Alcotest.test_case "error codes map onto the CLI exits" `Quick (fun () ->
        check Alcotest.int "bad-request is the usage exit" 124
          (P.error_exit_code P.Bad_request);
        check Alcotest.int "internal is the internal-verdict exit" 3
          (P.error_exit_code P.Server_internal));
    Alcotest.test_case "describe carries the versioned envelope" `Quick
      (fun () ->
        let json = P.describe_json ~server:"unit" in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "schema tag" true
          (contains json "\"schema\": \"entangle/serve/1\""));
  ]

(* --- the retry ladder --------------------------------------------------- *)

(* A policy whose sleeps are recorded instead of slept: the ladder's
   behavior (how many redials, with which delays) becomes assertable
   without wall-clock time. *)
let recording_retry ?(retries = 3) ?timeout_s ?(jitter_seed = 41) () =
  let slept = ref [] in
  let r =
    {
      Cl.default_retry with
      Cl.retries;
      timeout_s;
      backoff_base_s = 0.01;
      jitter_seed;
      sleep = (fun d -> slept := d :: !slept);
    }
  in
  (r, fun () -> List.rev !slept)

(* A minimal in-domain daemon stand-in that accepts [conns]
   connections, answers the handshake, reads one request frame and
   drops the connection without replying — the shape that forces the
   ladder's request-phase (post-send) decision. *)
let with_half_open_server ~conns f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-test-halfopen-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove socket with Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 16;
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to conns do
          let fd, _ = Unix.accept listener in
          let io = P.Io.of_fd fd in
          let dl = Some (Unix.gettimeofday () +. 10.) in
          ignore (P.Io.read_frame ?deadline:dl io);
          ignore
            (P.Io.write_frame ?deadline:dl io
               (P.welcome_to_string
                  (P.Welcome
                     { protocol = P.protocol_version; server = "half-open" })));
          ignore (P.Io.read_frame ?deadline:dl io);
          try Unix.close fd with Unix.Unix_error _ -> ()
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join d;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f socket)

let retry_tests =
  [
    Alcotest.test_case "backoff schedule is deterministic per seed" `Quick
      (fun () ->
        let policy seed =
          { Cl.default_retry with Cl.retries = 6; jitter_seed = seed }
        in
        check
          Alcotest.(list (float 0.))
          "same seed, same delays"
          (Cl.backoff_schedule (policy 7))
          (Cl.backoff_schedule (policy 7));
        check Alcotest.bool "different seeds decorrelate" true
          (Cl.backoff_schedule (policy 7) <> Cl.backoff_schedule (policy 8));
        check Alcotest.int "one delay per retry" 6
          (List.length (Cl.backoff_schedule (policy 7))));
    Alcotest.test_case "backoff is capped and jitter stays in band" `Quick
      (fun () ->
        let r =
          {
            Cl.default_retry with
            Cl.retries = 10;
            backoff_base_s = 0.05;
            backoff_cap_s = 0.4;
            jitter_seed = 3;
          }
        in
        List.iteri
          (fun k d ->
            let base = Float.min 0.4 (0.05 *. (2. ** float_of_int k)) in
            check Alcotest.bool
              (Fmt.str "delay %d within [base/2, 1.5*base)" k)
              true
              (d >= 0.5 *. base && d < 1.5 *. base))
          (Cl.backoff_schedule r));
    Alcotest.test_case "gives up after N retries, keeping the last error"
      `Quick (fun () ->
        let retry, slept = recording_retry ~retries:3 () in
        let socket = "/nonexistent/entangle-test.sock" in
        match Cl.call ~retry ~socket P.Ping with
        | Ok _ -> Alcotest.fail "a dead socket answered"
        | Error e ->
            check Alcotest.int "attempts = 1 + retries" 4 e.Cl.attempts;
            check Alcotest.string "last error kind survives" "refused"
              (Cl.kind_name e.Cl.kind);
            check Alcotest.bool "message is preserved" true
              (String.length e.Cl.message > 0);
            check
              Alcotest.(list (float 0.))
              "slept exactly the schedule"
              (Cl.backoff_schedule retry) (slept ()));
    Alcotest.test_case "idempotent requests retry after a dropped reply" `Quick
      (fun () ->
        (* Every attempt reaches the request phase and dies there; a
           ping is idempotent, so the ladder uses all its attempts. *)
        let retry, slept = recording_retry ~retries:2 ~timeout_s:10. () in
        with_half_open_server ~conns:3 (fun socket ->
            match Cl.call ~retry ~socket P.Ping with
            | Ok _ -> Alcotest.fail "half-open server answered"
            | Error e ->
                check Alcotest.int "all attempts used" 3 e.Cl.attempts;
                check Alcotest.int "slept between each" 2
                  (List.length (slept ()))));
    Alcotest.test_case "non-idempotent requests are never resent" `Quick
      (fun () ->
        (* Same failure shape, but cache-clear must not be retried
           once the request frame is out: one attempt, zero sleeps. *)
        let retry, slept = recording_retry ~retries:3 ~timeout_s:10. () in
        with_half_open_server ~conns:1 (fun socket ->
            match Cl.call ~retry ~socket P.Cache_clear with
            | Ok _ -> Alcotest.fail "half-open server answered"
            | Error e ->
                check Alcotest.int "exactly one attempt" 1 e.Cl.attempts;
                check Alcotest.int "no backoff sleeps" 0
                  (List.length (slept ()))));
    Alcotest.test_case "shutdown is never resent either" `Quick (fun () ->
        let retry, slept = recording_retry ~retries:3 ~timeout_s:10. () in
        with_half_open_server ~conns:1 (fun socket ->
            match Cl.call ~retry ~socket P.Shutdown with
            | Ok _ -> Alcotest.fail "half-open server answered"
            | Error e ->
                check Alcotest.int "exactly one attempt" 1 e.Cl.attempts;
                check Alcotest.int "no backoff sleeps" 0
                  (List.length (slept ()))));
  ]

(* --- end-to-end: a server in its own domain ----------------------------- *)

let temp_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "entangle-test-%s-%d.sock" tag (Unix.getpid ()))

let with_server ?(tag = "serve") ?max_clients ?io_timeout_s f =
  let socket = temp_socket tag in
  (try Sys.remove socket with Sys_error _ -> ());
  match
    Srv.create ~name:"test-daemon" ?max_clients ?io_timeout_s ~socket ()
  with
  | Error e -> Alcotest.failf "Server.create: %s" (Srv.error_message e)
  | Ok server ->
      let d = Domain.spawn (fun () -> Srv.run server) in
      Fun.protect
        ~finally:(fun () ->
          (* The shutdown connect can transiently lose an admission
             race (e.g. against a just-closed client's handler still
             holding its slot), so retry briefly — a single ignored
             failure here would leave Domain.join waiting forever. *)
          let rec stop n =
            match Cl.connect ~timeout_s:10. ~socket () with
            | Ok c -> ignore (Cl.shutdown c)
            | Error _ when n > 0 ->
                Unix.sleepf 0.05;
                stop (n - 1)
            | Error _ -> ()
          in
          stop 100;
          Domain.join d)
        (fun () -> f server socket)

let end_to_end_tests =
  [
    Alcotest.test_case "session: reject, ping, bad request, shutdown" `Slow
      (fun () ->
        with_server (fun _server socket ->
            (* A future client is turned away with a structured frame
               naming both versions — and the daemon survives it. *)
            (match
               Cl.raw_hello ~socket ~protocol:(P.protocol_version + 1)
             with
            | Ok (P.Rejected { expected; got; message }) ->
                check Alcotest.int "expected" P.protocol_version expected;
                check Alcotest.int "got" (P.protocol_version + 1) got;
                check Alcotest.bool "reason is human-readable" true
                  (String.length message > 0)
            | Ok (P.Welcome _) ->
                Alcotest.fail "future protocol was welcomed"
            | Ok (P.Busy _) -> Alcotest.fail "future protocol got busy"
            | Error e -> Alcotest.failf "raw_hello: %s" e);
            match Cl.connect ~client:"unit-test" ~socket () with
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Cl.close c)
                  (fun () ->
                    (match Cl.ping c with
                    | Ok () -> ()
                    | Error e -> Alcotest.failf "ping: %s" (Cl.error_message e));
                    (* A check the server cannot even start — garbage
                       graphs — must come back as a structured
                       bad-request, not a dropped connection. *)
                    (match
                       Cl.check c ~gs:(Sexp.atom "garbage")
                         ~gd:(Sexp.atom "garbage")
                         ~relation:(Sexp.atom "garbage") ()
                     with
                    | Ok (P.Error_reply { code = P.Bad_request; _ }) -> ()
                    | Ok _ -> Alcotest.fail "garbage graphs were accepted"
                    | Error e ->
                        Alcotest.failf "check transport: %s"
                          (Cl.error_message e));
                    (* The connection is still usable afterwards. *)
                    match Cl.ping c with
                    | Ok () -> ()
                    | Error e ->
                        Alcotest.failf "ping after bad request: %s"
                          (Cl.error_message e))));
    Alcotest.test_case "batch: items stream in order with contained faults"
      `Slow (fun () ->
        with_server ~tag:"batch" (fun _server socket ->
            match Cl.connect ~socket () with
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Cl.close c)
                  (fun () ->
                    (* Unreadable instances: each must come back as its
                       own per-item bad-request, in order, with the
                       stream terminated by the full count. *)
                    let bad name =
                      {
                        P.gs = Sexp.atom name;
                        gd = Sexp.atom name;
                        relation = Sexp.atom name;
                      }
                    in
                    match
                      Cl.check_batch c
                        ~instances:[ bad "alpha"; bad "beta"; bad "gamma" ]
                        ()
                    with
                    | Error e ->
                        Alcotest.failf "check_batch: %s" (Cl.error_message e)
                    | Ok items ->
                        check Alcotest.int "one item per instance" 3
                          (List.length items);
                        List.iter
                          (fun item ->
                            match item with
                            | P.Error_reply { code = P.Bad_request; _ } -> ()
                            | _ ->
                                Alcotest.fail
                                  "expected a per-item bad-request")
                          items)));
    Alcotest.test_case "pipeline: responses arrive in request order" `Slow
      (fun () ->
        with_server ~tag:"pipeline" (fun _server socket ->
            match Cl.connect ~socket () with
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Cl.close c)
                  (fun () ->
                    (* Five requests written back-to-back before any
                       reply is read; the heavy/faulty one in the
                       middle must not reorder the stream. *)
                    let garbage_check =
                      P.Check
                        {
                          options = P.default_options;
                          gs = Sexp.atom "garbage";
                          gd = Sexp.atom "garbage";
                          relation = Sexp.atom "garbage";
                        }
                    in
                    (match
                       Cl.pipeline c
                         [
                           P.Ping;
                           P.Describe;
                           garbage_check;
                           P.Server_stats;
                           P.Ping;
                         ]
                     with
                    | Error e ->
                        Alcotest.failf "pipeline: %s" (Cl.error_message e)
                    | Ok responses -> (
                        match responses with
                        | [
                         P.Pong;
                         P.Described _;
                         P.Error_reply { code = P.Bad_request; _ };
                         P.Server_stats_reply _;
                         P.Pong;
                        ] ->
                            ()
                        | other ->
                            Alcotest.failf
                              "responses out of order or wrong arity (%d)"
                              (List.length other)));
                    (* A multi-frame streamer cannot ride a pipeline:
                       its reply accounting would desynchronize. *)
                    (match
                       Cl.pipeline c
                         [
                           P.Ping;
                           P.Check_batch
                             { options = P.default_options; instances = [] };
                         ]
                     with
                    | Ok _ -> Alcotest.fail "check-batch pipelined"
                    | Error _ -> ());
                    (* A batch far past the in-flight bound (16
                       frames): the client must interleave drains with
                       sends and still hand back every response in
                       order. *)
                    (match
                       Cl.pipeline c (List.init 50 (fun _ -> P.Ping))
                     with
                    | Error e ->
                        Alcotest.failf "long pipeline: %s"
                          (Cl.error_message e)
                    | Ok responses ->
                        check Alcotest.int "every ping answered" 50
                          (List.length responses);
                        List.iter
                          (function
                            | P.Pong -> ()
                            | _ -> Alcotest.fail "non-pong in ping pipeline")
                          responses);
                    (* The connection is still usable afterwards. *)
                    match Cl.ping c with
                    | Ok () -> ()
                    | Error e ->
                        Alcotest.failf "ping after pipeline: %s"
                          (Cl.error_message e))));
    Alcotest.test_case "server-stats: counters served over the wire" `Slow
      (fun () ->
        with_server ~tag:"stats" (fun server socket ->
            match Cl.connect ~socket () with
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Cl.close c)
                  (fun () ->
                    (match Cl.ping c with
                    | Ok () -> ()
                    | Error e -> Alcotest.failf "ping: %s" (Cl.error_message e));
                    match Cl.server_stats c with
                    | Ok (P.Server_stats_reply s) ->
                        check Alcotest.bool "accepted at least this client"
                          true (s.P.accepted >= 1);
                        check Alcotest.bool "served at least the ping" true
                          (s.P.served >= 1);
                        check Alcotest.int "wire counters match in-process"
                          (Srv.stats server).P.accepted s.P.accepted
                    | Ok _ -> Alcotest.fail "unexpected reply to server-stats"
                    | Error e ->
                        Alcotest.failf "server_stats: %s" (Cl.error_message e))));
    Alcotest.test_case "admission: over-limit clients get a busy frame" `Slow
      (fun () ->
        with_server ~tag:"busy" ~max_clients:1 (fun _server socket ->
            match Cl.connect ~socket () with
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)
            | Ok first ->
                (match Cl.connect ~timeout_s:10. ~socket () with
                | Ok second ->
                    Cl.close second;
                    Cl.close first;
                    Alcotest.fail "second client was admitted over the limit"
                | Error e ->
                    check Alcotest.string "structured busy rejection" "busy"
                      (Cl.kind_name e.Cl.kind));
                Cl.close first;
                (* Once the slot frees the daemon admits again; the
                   release is asynchronous, so poll briefly. *)
                let rec readmitted n =
                  match Cl.connect ~timeout_s:10. ~socket () with
                  | Ok c ->
                      Cl.close c;
                      true
                  | Error _ when n > 0 ->
                      Unix.sleepf 0.02;
                      readmitted (n - 1)
                  | Error _ -> false
                in
                check Alcotest.bool "slot frees after disconnect" true
                  (readmitted 100)));
    Alcotest.test_case "slow loris: a stalled frame costs one timeout" `Slow
      (fun () ->
        with_server ~tag:"loris" ~io_timeout_s:0.2 (fun server socket ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let io = P.Io.of_fd fd in
            let dl = Some (Unix.gettimeofday () +. 10.) in
            ignore
              (P.Io.write_frame ?deadline:dl io
                 (P.hello_to_string
                    { P.protocol = P.protocol_version; client = "loris" }));
            ignore (P.Io.read_frame ?deadline:dl io);
            (* Two digits of a length prefix, then silence: the server
               must cut the connection at its I/O deadline, not hold a
               handler thread hostage. *)
            ignore (P.Io.write_raw ?deadline:dl io "12");
            let rec wait_timeout n =
              if (Srv.stats server).P.timed_out >= 1 then true
              else if n = 0 then false
              else begin
                Unix.sleepf 0.05;
                wait_timeout (n - 1)
              end
            in
            check Alcotest.bool "timeout counted" true (wait_timeout 100);
            (try Unix.close fd with Unix.Unix_error _ -> ());
            (* And the daemon still answers well-behaved clients. *)
            match Cl.connect ~timeout_s:10. ~socket () with
            | Ok c ->
                check Alcotest.bool "daemon survives the loris" true
                  (Cl.ping c = Ok ());
                Cl.close c
            | Error e -> Alcotest.failf "connect: %s" (Cl.error_message e)));
  ]

(* --- socket ownership --------------------------------------------------- *)

let race_tests =
  [
    Alcotest.test_case "a second daemon on a live socket is refused" `Slow
      (fun () ->
        with_server ~tag:"race1" (fun _server socket ->
            match Srv.create ~name:"loser" ~socket () with
            | Ok _ -> Alcotest.fail "two daemons own one socket"
            | Error (Srv.In_use { socket = s }) ->
                check Alcotest.string "error names the socket" socket s
            | Error (Srv.Failed m) ->
                Alcotest.failf "expected In_use, got: %s" m));
    Alcotest.test_case "concurrent creates resolve to exactly one listener"
      `Slow (fun () ->
        let socket = temp_socket "race2" in
        (try Sys.remove socket with Sys_error _ -> ());
        (* Two would-be daemons race through probe-and-rebind on the
           same path; the lock serializes them, so exactly one may
           win. *)
        let contender () =
          Domain.spawn (fun () -> Srv.create ~name:"contender" ~socket ())
        in
        let a = contender () and b = contender () in
        let results = [ Domain.join a; Domain.join b ] in
        let winners = List.filter Result.is_ok results in
        check Alcotest.int "exactly one winner" 1 (List.length winners);
        (match
           List.find_opt
             (function Error (Srv.In_use _) -> true | _ -> false)
             results
         with
        | Some _ -> ()
        | None -> Alcotest.fail "loser's error was not In_use");
        (* Drain the winner so nothing leaks into later tests. *)
        match winners with
        | [ Ok server ] ->
            let d = Domain.spawn (fun () -> Srv.run server) in
            (match Cl.connect ~socket () with
            | Ok c -> ignore (Cl.shutdown c)
            | Error _ -> ());
            Domain.join d;
            check Alcotest.bool "socket removed after drain" false
              (Sys.file_exists socket)
        | _ -> ());
  ]

let suite =
  [
    ("serve.framing", framing_tests);
    ("serve.handshake", handshake_tests);
    ("serve.grammar", grammar_tests);
    ("serve.retry", retry_tests);
    ("serve.end_to_end", end_to_end_tests);
    ("serve.race", race_tests);
  ]
