(* Wire-protocol units for the resident checker service: framing edge
   cases, handshake negotiation, lossless request/response round-trips
   (including the hex-float statistics encoding), and a small
   end-to-end session against a server running in its own domain. The
   heavyweight fidelity and warm-cache acceptance runs live in the
   @serve-smoke bench alias; these tests pin the grammar itself. *)

module Sexp = Entangle_ir.Sexp
module P = Entangle_serve.Protocol
module Srv = Entangle_serve.Server
module Cl = Entangle_serve.Client

let check = Alcotest.check

(* --- framing ------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "entangle-test-serve" ".frame" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_frames_of_raw raw k =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc raw;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> k ic))

let framing_tests =
  [
    Alcotest.test_case "frames round-trip, including empty payloads" `Quick
      (fun () ->
        with_temp_file (fun path ->
            let payloads = [ "(ping)"; ""; String.make 4096 'x'; "a\nb\nc" ] in
            let oc = open_out_bin path in
            List.iter (P.write_frame oc) payloads;
            close_out oc;
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                List.iter
                  (fun expected ->
                    match P.read_frame ic with
                    | Ok got -> check Alcotest.string "payload" expected got
                    | Error e -> Alcotest.failf "read_frame: %s" e)
                  payloads;
                (* Clean EOF after the last frame is an error, not a
                   hang or an empty frame. *)
                check Alcotest.bool "EOF is an error" true
                  (Result.is_error (P.read_frame ic)))));
    Alcotest.test_case "garbage length prefixes are rejected" `Quick (fun () ->
        let rejected raw =
          read_frames_of_raw raw (fun ic -> Result.is_error (P.read_frame ic))
        in
        check Alcotest.bool "non-digit prefix" true (rejected "abc\n(ping)");
        check Alcotest.bool "negative length" true (rejected "-5\nhello");
        check Alcotest.bool "missing newline" true (rejected "12");
        check Alcotest.bool "empty stream" true (rejected ""));
    Alcotest.test_case "oversized lengths are refused without reading" `Quick
      (fun () ->
        (* Both an 11-digit prefix and a valid number above the cap
           must be refused before any payload is consumed. *)
        let refused raw =
          read_frames_of_raw raw (fun ic -> Result.is_error (P.read_frame ic))
        in
        check Alcotest.bool "too many digits" true (refused "99999999999\nx");
        check Alcotest.bool "above max_frame_bytes" true
          (refused (string_of_int (P.max_frame_bytes + 1) ^ "\nx")));
    Alcotest.test_case "EOF mid-payload is an error" `Quick (fun () ->
        read_frames_of_raw "10\nabc" (fun ic ->
            check Alcotest.bool "truncated payload" true
              (Result.is_error (P.read_frame ic))));
  ]

(* --- handshake ---------------------------------------------------------- *)

let handshake_tests =
  [
    Alcotest.test_case "hello round-trips" `Quick (fun () ->
        let h = { P.protocol = P.protocol_version; client = "test client" } in
        match P.hello_of_string (P.hello_to_string h) with
        | Ok h' ->
            check Alcotest.int "protocol" h.P.protocol h'.P.protocol;
            check Alcotest.string "client" h.P.client h'.P.client
        | Error e -> Alcotest.failf "hello_of_string: %s" e);
    Alcotest.test_case "welcome and reject round-trip" `Quick (fun () ->
        let cases =
          [
            P.Welcome { protocol = 1; server = "entangle-serve" };
            P.Rejected
              { expected = 1; got = 2; message = "upgrade the older side" };
          ]
        in
        List.iter
          (fun w ->
            match P.welcome_of_string (P.welcome_to_string w) with
            | Ok w' -> check Alcotest.bool "welcome" true (w = w')
            | Error e -> Alcotest.failf "welcome_of_string: %s" e)
          cases);
    Alcotest.test_case "malformed hello is an error" `Quick (fun () ->
        check Alcotest.bool "not a hello" true
          (Result.is_error (P.hello_of_string "(pang)"));
        check Alcotest.bool "not an sexp" true
          (Result.is_error (P.hello_of_string "((")));
  ]

(* --- request / response grammar ---------------------------------------- *)

let roundtrip_request ~id req =
  match P.request_of_string (P.request_to_string ~id req) with
  | Ok (id', req') ->
      check Alcotest.int "request id" id id';
      check Alcotest.bool "request body" true (req = req')
  | Error e -> Alcotest.failf "request_of_string: %s" e

let roundtrip_response ~id resp =
  match P.response_of_string (P.response_to_string ~id resp) with
  | Ok (id', resp') ->
      check Alcotest.int "response id" id id';
      check Alcotest.bool "response body" true (resp = resp')
  | Error e -> Alcotest.failf "response_of_string: %s" e

let sample_stats =
  {
    Entangle.Refine.operators_processed = 7;
    saturation_iterations = 12;
    egraph_nodes_peak = 345;
    egraph_classes_peak = 123;
    matches_examined = 9001;
    unions_applied = 42;
    rule_hits = [ ("matmul-assoc", 3); ("sum of slices", 1) ];
    retries = 2;
    budget_trips = 1;
    cache_hits = 4;
    cache_misses = 3;
    cache_replays_failed = 1;
    (* Not representable in decimal: the hex-float rendering must
       carry it across the wire bit-for-bit. *)
    wall_time_s = 0.1 +. 0.2;
  }

let grammar_tests =
  [
    Alcotest.test_case "simple requests round-trip" `Quick (fun () ->
        List.iteri
          (fun i req -> roundtrip_request ~id:i req)
          [ P.Ping; P.Describe; P.Cache_stats; P.Cache_clear; P.Shutdown ]);
    Alcotest.test_case "check requests round-trip structurally" `Quick
      (fun () ->
        let graph name =
          Sexp.list [ Sexp.atom "graph"; Sexp.atom name ]
        in
        let reqs =
          [
            P.Check
              {
                options = P.default_options;
                gs = graph "gs";
                gd = graph "gd";
                relation = Sexp.list [ Sexp.atom "relation" ];
              };
            P.Check
              {
                options =
                  {
                    P.family = Some "regression";
                    namespace = Some "tenant a";
                    jobs = Some 4;
                    keep_going = true;
                  };
                gs = graph "gs";
                gd = graph "gd";
                relation = Sexp.list [ Sexp.atom "relation" ];
              };
          ]
        in
        List.iteri (fun i req -> roundtrip_request ~id:(100 + i) req) reqs);
    Alcotest.test_case "statistics round-trip losslessly" `Quick (fun () ->
        match P.stats_of_sexp (P.stats_to_sexp sample_stats) with
        | Ok s ->
            check Alcotest.bool "bit-for-bit, wall time included" true
              (s = sample_stats)
        | Error e -> Alcotest.failf "stats_of_sexp: %s" e);
    Alcotest.test_case "responses round-trip" `Quick (fun () ->
        let responses =
          [
            P.Pong;
            P.Bye;
            P.Described (P.describe_json ~server:"test");
            P.Cache_cleared 17;
            P.Error_reply { code = P.Bad_request; message = "no such family" };
            P.Error_reply { code = P.Server_internal; message = "boom" };
            P.Cache_stats_reply
              {
                dir = "/tmp/cache";
                entries = 3;
                bytes = 1234;
                shards = 2;
                quarantined = 1;
                max_bytes = Some 4096;
                max_age_s = Some 60.;
                evicted_entries = 5;
                evicted_bytes = 678;
                expired_entries = 2;
              };
            P.Cache_stats_reply
              {
                dir = "/tmp/cache";
                entries = 0;
                bytes = 0;
                shards = 0;
                quarantined = 0;
                max_bytes = None;
                max_age_s = None;
                evicted_entries = 0;
                evicted_bytes = 0;
                expired_entries = 0;
              };
            P.Checked
              {
                exit_code = 0;
                verdict = "refines";
                report = "refines: 7 operators\nwith a second line";
                output_relation =
                  Some (Sexp.list [ Sexp.atom "relation" ]);
                stats = sample_stats;
              };
            P.Checked
              {
                exit_code = 1;
                verdict = "unmapped";
                report = "operator 3 has no counterpart";
                output_relation = None;
                stats = sample_stats;
              };
          ]
        in
        List.iteri (fun i resp -> roundtrip_response ~id:i resp) responses);
    Alcotest.test_case "error codes map onto the CLI exits" `Quick (fun () ->
        check Alcotest.int "bad-request is the usage exit" 124
          (P.error_exit_code P.Bad_request);
        check Alcotest.int "internal is the internal-verdict exit" 3
          (P.error_exit_code P.Server_internal));
    Alcotest.test_case "describe carries the versioned envelope" `Quick
      (fun () ->
        let json = P.describe_json ~server:"unit" in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "schema tag" true
          (contains json "\"schema\": \"entangle/serve/1\""));
  ]

(* --- end-to-end: a server in its own domain ----------------------------- *)

let with_server f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-test-serve-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove socket with Sys_error _ -> ());
  match Srv.create ~name:"test-daemon" ~socket () with
  | Error e -> Alcotest.failf "Server.create: %s" e
  | Ok server ->
      let d = Domain.spawn (fun () -> Srv.run server) in
      Fun.protect
        ~finally:(fun () ->
          (match Cl.connect ~socket () with
          | Ok c -> ignore (Cl.shutdown c)
          | Error _ -> ());
          Domain.join d)
        (fun () -> f socket)

let end_to_end_tests =
  [
    Alcotest.test_case "session: reject, ping, bad request, shutdown" `Slow
      (fun () ->
        with_server (fun socket ->
            (* A future client is turned away with a structured frame
               naming both versions — and the daemon survives it. *)
            (match
               Cl.raw_hello ~socket ~protocol:(P.protocol_version + 1)
             with
            | Ok (P.Rejected { expected; got; message }) ->
                check Alcotest.int "expected" P.protocol_version expected;
                check Alcotest.int "got" (P.protocol_version + 1) got;
                check Alcotest.bool "reason is human-readable" true
                  (String.length message > 0)
            | Ok (P.Welcome _) ->
                Alcotest.fail "future protocol was welcomed"
            | Error e -> Alcotest.failf "raw_hello: %s" e);
            match Cl.connect ~client:"unit-test" ~socket () with
            | Error e -> Alcotest.failf "connect: %s" e
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Cl.close c)
                  (fun () ->
                    (match Cl.ping c with
                    | Ok () -> ()
                    | Error e -> Alcotest.failf "ping: %s" e);
                    (* A check the server cannot even start — garbage
                       graphs — must come back as a structured
                       bad-request, not a dropped connection. *)
                    (match
                       Cl.check c ~gs:(Sexp.atom "garbage")
                         ~gd:(Sexp.atom "garbage")
                         ~relation:(Sexp.atom "garbage") ()
                     with
                    | Ok (P.Error_reply { code = P.Bad_request; _ }) -> ()
                    | Ok _ -> Alcotest.fail "garbage graphs were accepted"
                    | Error e -> Alcotest.failf "check transport: %s" e);
                    (* The connection is still usable afterwards. *)
                    match Cl.ping c with
                    | Ok () -> ()
                    | Error e ->
                        Alcotest.failf "ping after bad request: %s" e)));
  ]

let suite =
  [
    ("serve.framing", framing_tests);
    ("serve.handshake", handshake_tests);
    ("serve.grammar", grammar_tests);
    ("serve.end_to_end", end_to_end_tests);
  ]
