(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (section 6):

     fig3     end-to-end verification time per model
     fig4     scalability in parallelism degree and layer count
     fig5     lemma-corpus statistics (operators, lemmas, LoC CDF)
     fig6     lemma-application heatmap
     table3   the nine bug case studies
     ablation the section 4.3 optimizations on/off
     extensions  strategies beyond the paper (DP, PP, autodiff backward)
     perf     Bechamel micro-benchmarks (one Test.make per experiment)

   Run a single experiment with `dune exec bench/main.exe -- fig3`, or
   everything (except perf) with no argument. Absolute numbers differ
   from the paper's CloudLab testbed; the shapes are what reproduce. *)

open Entangle_models

let hr () = Fmt.pr "%s@." (String.make 74 '-')

let section title =
  Fmt.pr "@.";
  hr ();
  Fmt.pr "%s@." title;
  hr ()

let time_check ?config inst =
  let t0 = Unix.gettimeofday () in
  let result = Instance.check ?config inst in
  (Unix.gettimeofday () -. t0, result)

let result_stats = function
  | Ok (s : Entangle.Refine.success) -> s.stats
  | Error (f : Entangle.Refine.failure) -> f.stats

(* Per-lemma application counts now come out of the checker's stats
   (they are a fold over the trace event stream) instead of the old
   [?hit_counter] hashtable side channel. *)
let rule_hits result = (result_stats result).Entangle.Refine.rule_hits

let hit_count hits name = Option.value (List.assoc_opt name hits) ~default:0

(* --- Figure 3 --------------------------------------------------------- *)

let fig3 () =
  section
    "Figure 3: end-to-end verification time (1 layer, parallelism 2)";
  Fmt.pr "%-28s %10s %12s %s@." "model" "operators" "time (s)" "verdict";
  List.iter
    (fun inst ->
      let secs, result = time_check inst in
      Fmt.pr "%-28s %10d %12.2f %s@." inst.Instance.name
        (Instance.operator_count inst)
        secs
        (match result with
        | Ok _ -> "refines"
        | Error f ->
            Fmt.str "FAILED at %a" Entangle_ir.Node.pp f.operator))
    (Zoo.fig3_instances ());
  Fmt.pr
    "@.(The regression model is the sub-second case of section 6.3; \
     ByteDance appears as separate forward and backward passes.)@."

(* --- Figure 4 --------------------------------------------------------- *)

let fig4_model name build degrees layers_list =
  Fmt.pr "@.%s:@." name;
  Fmt.pr "%12s" "layers\\par";
  List.iter (fun d -> Fmt.pr "%10d" d) degrees;
  Fmt.pr "@.";
  List.iter
    (fun layers ->
      Fmt.pr "%12d" layers;
      List.iter
        (fun degree ->
          match build ~layers ~degree with
          | exception Invalid_argument _ -> Fmt.pr "%10s" "n/a"
          | inst ->
              let secs, result = time_check inst in
              (match result with
              | Ok _ -> Fmt.pr "%9.2fs" secs
              | Error _ -> Fmt.pr "%10s" "FAIL"))
        degrees;
      Fmt.pr "@.")
    layers_list

let fig4 () =
  section "Figure 4: scalability in parallelism size and layers";
  fig4_model "GPT (TP+SP+VP)"
    (fun ~layers ~degree -> Gpt.build ~layers ~degree ~heads:8 ())
    [ 2; 4; 8 ] [ 1; 2; 4 ];
  fig4_model "Llama-3 (TP)"
    (fun ~layers ~degree -> Llama.build ~layers ~degree ~heads:8 ())
    [ 2; 4; 6; 8 ] [ 1; 2; 4 ];
  Fmt.pr
    "@.(Llama-3 has no data point at parallelism 6: 8 heads cannot be \
     evenly partitioned, as in the paper.)@."

(* --- Figure 5 --------------------------------------------------------- *)

let distinct_op_families inst =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun g ->
      List.iter
        (fun n -> Hashtbl.replace tbl (Entangle_ir.Op.name (Entangle_ir.Node.op n)) ())
        (Entangle_ir.Graph.nodes g))
    [ inst.Instance.gs; inst.Instance.gd ];
  Hashtbl.length tbl

let fig5 () =
  section "Figure 5a: operators, lemmas and lemma complexity per model";
  Fmt.pr "%-14s %10s %14s %16s@." "model" "op kinds" "lemmas used"
    "avg ops/lemma";
  let configs =
    [
      ("GPT", Gpt.build ~layers:1 ~degree:2 ());
      ("Qwen2", Qwen2.build ~layers:1 ~degree:2 ());
      ("Llama", Llama.build ~layers:1 ~degree:2 ());
      ("Bytedance", Moe.build ~degree:2 ());
    ]
  in
  List.iter
    (fun (name, inst) ->
      let _, result = time_check inst in
      let used =
        List.filter_map
          (fun (k, v) -> if v > 0 then Some k else None)
          (rule_hits result)
      in
      let complexities =
        List.filter_map
          (fun n ->
            Option.map
              (fun (l : Entangle_lemmas.Lemma.t) -> l.complexity)
              (Entangle_lemmas.Registry.find n))
          used
      in
      let avg =
        match complexities with
        | [] -> 0.
        | cs ->
            float_of_int (List.fold_left ( + ) 0 cs)
            /. float_of_int (List.length cs)
      in
      Fmt.pr "%-14s %10d %14d %16.1f@." name (distinct_op_families inst)
        (List.length used) avg)
    configs;
  section "Figure 5b: CDF of lines of code per lemma";
  let locs =
    List.map
      (fun (l : Entangle_lemmas.Lemma.t) -> l.loc)
      Entangle_lemmas.Registry.all
    |> List.sort compare
  in
  let n = List.length locs in
  Fmt.pr "%8s %8s@." "LoC <=" "CDF";
  List.iter
    (fun pct ->
      let idx = min (n - 1) (pct * n / 100) in
      Fmt.pr "%8d %7d%%@." (List.nth locs idx) pct)
    [ 10; 25; 50; 75; 90; 100 ];
  Fmt.pr "(%d lemmas; universal lemmas take ~2 lines, conditioned ones more)@."
    n

(* --- Figure 6 --------------------------------------------------------- *)

let fig6 () =
  section "Figure 6: lemma application counts (log2 buckets)";
  let corpus = Entangle_lemmas.Registry.all in
  let rows =
    [
      ("GPT(2)", fun () -> Gpt.build ~layers:1 ~degree:2 ~heads:8 ());
      ("GPT(4)", fun () -> Gpt.build ~layers:1 ~degree:4 ~heads:8 ());
      ("GPT(8)", fun () -> Gpt.build ~layers:1 ~degree:8 ~heads:8 ());
      ("Qwen2(4)", fun () -> Qwen2.build ~layers:1 ~degree:4 ());
      ("Llama-3(4)", fun () -> Llama.build ~layers:1 ~degree:4 ());
    ]
  in
  let results =
    List.map
      (fun (name, build) ->
        let _, result = time_check (build ()) in
        (name, rule_hits result))
      rows
  in
  (* Columns: lemmas that were applied at least once by some model. *)
  let applied =
    List.filteri
      (fun _ (l : Entangle_lemmas.Lemma.t) ->
        List.exists (fun (_, hits) -> hit_count hits l.name > 0) results)
      corpus
  in
  Fmt.pr "%-12s" "";
  List.iteri (fun i _ -> Fmt.pr "%3d" i) applied;
  Fmt.pr "@.";
  List.iter
    (fun (name, hits) ->
      Fmt.pr "%-12s" name;
      List.iter
        (fun (l : Entangle_lemmas.Lemma.t) ->
          let c = hit_count hits l.name in
          if c = 0 then Fmt.pr "  ."
          else
            let bucket =
              int_of_float (Float.log2 (float_of_int (c + 1)))
            in
            Fmt.pr "%3d" (min 9 bucket))
        applied;
      Fmt.pr "@.")
    results;
  Fmt.pr "%-12s" "class";
  List.iter
    (fun (l : Entangle_lemmas.Lemma.t) ->
      Fmt.pr "%3s" (Entangle_lemmas.Lemma.klass_letter l.klass))
    applied;
  Fmt.pr "@.@.Lemma ids:@.";
  List.iteri
    (fun i (l : Entangle_lemmas.Lemma.t) ->
      Fmt.pr "  %2d [%s] %s@." i
        (Entangle_lemmas.Lemma.klass_letter l.klass)
        l.name)
    applied

(* --- Table 3 ----------------------------------------------------------- *)

let table3 () =
  section "Table 3: bug case studies";
  Fmt.pr "%3s %-26s %-52s %s@." "id" "framework" "description" "result";
  List.iter
    (fun case ->
      let t0 = Unix.gettimeofday () in
      let outcome = Bugs.run case in
      let secs = Unix.gettimeofday () -. t0 in
      Fmt.pr "%3d %-26s %-52s %s (%.1fs)@." case.Bugs.id case.Bugs.framework
        case.Bugs.description
        (match outcome with
        | Bugs.Detected _ -> "detected"
        | Bugs.Missed -> "MISSED")
        secs)
    (Bugs.all ())

(* --- Ablation ---------------------------------------------------------- *)

let verdict_str = function Ok _ -> "refines" | Error _ -> "FAILED"

(* The saturation-runner configurations the scheduler ablation compares.
   "simple" is the pre-backoff runner (full re-match of every rule every
   iteration); the two intermediate rows isolate each half of the
   optimization. *)
let scheduler_configs =
  [
    ("incremental+backoff", Entangle.Config.default);
    ("backoff only", Entangle.Config.{ default with incremental_matching = false });
    ("incremental only", Entangle.Config.{ default with scheduler = Entangle_egraph.Runner.Simple });
    ("simple", Entangle.Config.simple_runner);
  ]

(* Hand-rolled JSON emission: the harness deliberately has no JSON
   dependency, and the schema (documented in DESIGN.md) is flat. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* [domains] is the -j job count of the run; [speedup] is the -j 1 wall
   time of the same workload divided by this run's (1.0 for sequential
   runs and for rows where no baseline was measured). *)
let json_record ?name ?(domains = 1) ?(speedup = 1.0) inst config_name secs
    result =
  let s = result_stats result in
  Fmt.str
    "{\"model\": %S, \"config\": %S, \"time_s\": %.4f, \"verdict\": %S, \
     \"operators\": %d, \"iterations\": %d, \"matches\": %d, \"unions\": \
     %d, \"nodes_peak\": %d, \"classes_peak\": %d, \"retries\": %d, \
     \"budget_trips\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"domains\": %d, \"speedup\": %.4f}"
    (json_escape (Option.value name ~default:inst.Instance.name))
    (json_escape config_name)
    secs (verdict_str result)
    (Instance.operator_count inst)
    s.Entangle.Refine.saturation_iterations s.Entangle.Refine.matches_examined
    s.Entangle.Refine.unions_applied s.Entangle.Refine.egraph_nodes_peak
    s.Entangle.Refine.egraph_classes_peak s.Entangle.Refine.retries
    s.Entangle.Refine.budget_trips s.Entangle.Refine.cache_hits
    s.Entangle.Refine.cache_misses domains speedup

let bench_egraph_json = "BENCH_egraph.json"
let bench_trace_json = "BENCH_trace.json"

(* A Chrome trace of one default-config GPT verification, emitted
   alongside the numeric summary so regressions can be inspected
   visually in Perfetto. *)
let emit_reference_trace () =
  let module Trace = Entangle_trace in
  let oc = open_out bench_trace_json in
  let ch = Trace.Chrome.create oc in
  let config =
    Entangle.Config.default |> Entangle.Config.with_trace (Trace.Chrome.sink ch)
  in
  let _ = Instance.check ~config (Gpt.build ~layers:1 ~degree:2 ~heads:4 ()) in
  Trace.Chrome.close ch;
  close_out oc;
  Fmt.pr "wrote %s (%d events)@." bench_trace_json (Trace.Chrome.event_count ch)

(* A throwaway on-disk store for the cache rows: cold and warm numbers
   must not depend on (or pollute) the user's real ~/.cache/entangle. *)
let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-bench-cache.%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      match Entangle_cache.Cache.create ~dir () with
      | Error e ->
          Fmt.epr "cannot open temp cache at %s: %s@." dir e;
          exit 1
      | Ok cache -> f cache)

let ablation () =
  section "Ablation: the optimizations of section 4.3";
  let build () = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
  Fmt.pr "%-22s %10s %16s %10s %s@." "configuration" "time (s)"
    "peak e-graph" "matches" "verdict";
  List.iter
    (fun (name, config) ->
      let inst = build () in
      let secs, result = time_check ~config inst in
      let s = result_stats result in
      Fmt.pr "%-22s %10.2f %16d %10d %s@." name secs
        s.Entangle.Refine.egraph_nodes_peak
        s.Entangle.Refine.matches_examined (verdict_str result))
    ([
       ("default", Entangle.Config.default);
       ("no frontier (4.3.1)", Entangle.Config.no_frontier);
       ("no pruning (4.3.2)", Entangle.Config.no_pruning);
     ]
    @ List.tl scheduler_configs);
  let json_records = ref [] in
  let push r = json_records := r :: !json_records in

  section "Scheduler ablation: verdict equivalence across the zoo";
  Fmt.pr "%-18s %12s %12s %10s %10s %s@." "instance" "simple" "incr+backoff"
    "matches" "matches" "agree";
  let zoo_agree = ref true in
  List.iter
    (fun name ->
      match Zoo.by_name name with
      | None -> ()
      | Some _ ->
          let run config_name config =
            let inst = Option.get (Zoo.by_name name) in
            let secs, result = time_check ~config inst in
            push (json_record inst config_name secs result);
            result
          in
          let simple = run "simple" Entangle.Config.simple_runner in
          let incr = run "incremental_backoff" Entangle.Config.default in
          let agree = verdict_str simple = verdict_str incr in
          if not agree then zoo_agree := false;
          Fmt.pr "%-18s %12s %12s %10d %10d %s@." name (verdict_str simple)
            (verdict_str incr)
            (result_stats simple).Entangle.Refine.matches_examined
            (result_stats incr).Entangle.Refine.matches_examined
            (if agree then "yes" else "NO"))
    Zoo.names;

  section
    "Figure-4 scaling sweep: matches examined, simple vs incremental+backoff";
  Fmt.pr "%-14s %12s %14s %8s %s@." "GPT cell" "simple" "incr+backoff"
    "ratio" "verdicts";
  let total_simple = ref 0 and total_incr = ref 0 in
  let sweep_agree = ref true in
  List.iter
    (fun (layers, degree) ->
      let cell = Fmt.str "gpt-d%dl%d" degree layers in
      let run config_name config =
        let inst = Gpt.build ~layers ~degree ~heads:8 () in
        let secs, result = time_check ~config inst in
        push (json_record ~name:cell inst config_name secs result);
        result
      in
      let simple = run "simple" Entangle.Config.simple_runner in
      let incr = run "incremental_backoff" Entangle.Config.default in
      let ms = (result_stats simple).Entangle.Refine.matches_examined in
      let mi = (result_stats incr).Entangle.Refine.matches_examined in
      total_simple := !total_simple + ms;
      total_incr := !total_incr + mi;
      let agree = verdict_str simple = verdict_str incr in
      if not agree then sweep_agree := false;
      Fmt.pr "%-14s %12d %14d %7.2fx %s@." cell ms mi
        (float_of_int ms /. float_of_int (max 1 mi))
        (if agree then "agree" else "DISAGREE"))
    (List.concat_map
       (fun layers -> List.map (fun degree -> (layers, degree)) [ 2; 4; 8 ])
       [ 1; 2; 4 ]);
  let ratio = float_of_int !total_simple /. float_of_int (max 1 !total_incr) in
  Fmt.pr "%-14s %12d %14d %7.2fx@." "total" !total_simple !total_incr ratio;
  Fmt.pr "@.verdict equivalence: %s;  match reduction: %.2fx (target >= 2x: %s)@."
    (if !zoo_agree && !sweep_agree then "every instance agrees"
     else "DISAGREEMENT — see tables above")
    ratio
    (if ratio >= 2.0 then "met" else "NOT met");

  section "Resilience ablation: escalation cost under starved budgets";
  Fmt.pr "%-18s %10s %8s %13s %s@." "configuration" "time (s)" "retries"
    "budget trips" "verdict";
  List.iter
    (fun (config_name, config) ->
      let inst = Regression.build ~microbatches:2 () in
      let secs, result = time_check ~config inst in
      let s = result_stats result in
      push (json_record inst config_name secs result);
      Fmt.pr "%-18s %10.2f %8d %13d %s@." config_name secs
        s.Entangle.Refine.retries s.Entangle.Refine.budget_trips
        (verdict_str result))
    (let starved =
       {
         Entangle_egraph.Runner.default_limits with
         Entangle_egraph.Runner.max_nodes = 8;
       }
     in
     [
       ("starved_no_retry",
        Entangle.Config.default
        |> Entangle.Config.with_limits starved
        |> Entangle.Config.with_escalation []);
       ("starved_escalated",
        Entangle.Config.default |> Entangle.Config.with_limits starved);
     ]);

  section "Cache ablation: cold vs warm certificate store";
  Fmt.pr "%-14s %10s %12s %8s %8s %s@." "run" "time (s)" "iterations"
    "hits" "misses" "verdict";
  with_temp_cache (fun cache ->
      let config =
        Entangle.Config.default |> Entangle.Config.with_cache (Some cache)
      in
      let run config_name =
        let inst = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
        let secs, result = time_check ~config inst in
        push (json_record inst config_name secs result);
        let s = result_stats result in
        Fmt.pr "%-14s %10.2f %12d %8d %8d %s@." config_name secs
          s.Entangle.Refine.saturation_iterations s.Entangle.Refine.cache_hits
          s.Entangle.Refine.cache_misses (verdict_str result);
        result
      in
      let cold = run "cache_cold" in
      let warm = run "cache_warm" in
      let ws = result_stats warm in
      Fmt.pr
        "@.warm re-check: %d/%d operators from cache, %d saturation \
         iterations (target 0), verdicts %s@."
        ws.Entangle.Refine.cache_hits ws.Entangle.Refine.operators_processed
        ws.Entangle.Refine.saturation_iterations
        (if verdict_str cold = verdict_str warm then "agree" else "DISAGREE"));

  section "Parallel checking: domain scaling on GPT (degree 8)";
  Fmt.pr "%-12s" "cell";
  List.iter (fun j -> Fmt.pr "%9s" (Fmt.str "-j %d" j)) [ 1; 2; 4; 8 ];
  Fmt.pr "%10s %s@." "speedup@8" "agree";
  let par_agree = ref true in
  let strip_wall (s : Entangle.Refine.stats) =
    { s with Entangle.Refine.wall_time_s = 0. }
  in
  List.iter
    (fun layers ->
      let cell = Fmt.str "gpt-d8l%d" layers in
      Fmt.pr "%-12s" cell;
      let baseline = ref None in
      let agree = ref true in
      List.iter
        (fun jobs ->
          let inst = Gpt.build ~layers ~degree:8 ~heads:8 () in
          let config =
            Entangle.Config.default |> Entangle.Config.with_jobs jobs
          in
          let secs, result = time_check ~config inst in
          let speedup =
            match !baseline with
            | None -> 1.0
            | Some (base_secs, _, _) -> base_secs /. Float.max 1e-9 secs
          in
          (match !baseline with
          | None ->
              baseline :=
                Some (secs, verdict_str result, strip_wall (result_stats result))
          | Some (_, v, s) ->
              if
                v <> verdict_str result
                || s <> strip_wall (result_stats result)
              then agree := false);
          push
            (json_record ~name:cell inst
               (Fmt.str "jobs_%d" jobs)
               ~domains:jobs ~speedup secs result);
          Fmt.pr "%8.2fs" secs;
          if jobs = 8 then Fmt.pr "%9.2fx" speedup)
        [ 1; 2; 4; 8 ];
      if not !agree then par_agree := false;
      Fmt.pr " %s@." (if !agree then "yes" else "NO"))
    [ 1; 2; 4 ];
  Fmt.pr
    "@.(Speedup depends on available cores: with %d recommended domains \
     on this host, expect ~1.0x on a single-core machine; verdict and \
     statistics agreement is checked regardless.)@."
    (Domain.recommended_domain_count ());

  section "Certificate exchange: portable bundle vs re-check";
  (* How much cheaper is accepting a bundle with the minimal verifier
     than re-running the full saturation check it certifies? *)
  let cert_recheck_s, cert_export_s, cert_verify_s, cert_bytes =
    let inst = Gpt.build ~layers:1 ~degree:2 ~heads:4 () in
    let recheck_s, result = time_check ~config:Entangle.Config.default inst in
    match result with
    | Error _ ->
        Fmt.pr "gpt did not refine; certificate row skipped@.";
        (recheck_s, 0., 0., 0)
    | Ok success -> (
        let t0 = Unix.gettimeofday () in
        match
          Entangle.Cert_export.bundle ~producer:"entangle-bench"
            ~gs:inst.Instance.gs ~gd:inst.Instance.gd ~env:inst.Instance.env
            ~input_relation:inst.Instance.input_relation success
        with
        | Error e ->
            Fmt.epr "certificate export failed: %s@." e;
            exit 1
        | Ok bundle -> (
            let text = Entangle_certexport.Bundle.to_string bundle in
            let export_s = Unix.gettimeofday () -. t0 in
            let t1 = Unix.gettimeofday () in
            match Entangle_certexport.Verify.check_string text with
            | Error e ->
                Fmt.epr "exported bundle failed verification: %a@."
                  Entangle_certexport.Cert_error.pp e;
                exit 1
            | Ok _ ->
                let verify_s = Unix.gettimeofday () -. t1 in
                (recheck_s, export_s, verify_s, String.length text)))
  in
  let cert_speedup = cert_recheck_s /. Float.max 1e-9 cert_verify_s in
  Fmt.pr "%-22s %10s %12s %10s@." "step" "time (s)" "bundle (B)" "speedup";
  Fmt.pr "%-22s %10.3f %12s %10s@." "full re-check" cert_recheck_s "-" "-";
  Fmt.pr "%-22s %10.3f %12d %10s@." "cert_export" cert_export_s cert_bytes "-";
  Fmt.pr "%-22s %10.3f %12d %9.0fx@." "cert_verify" cert_verify_s cert_bytes
    cert_speedup;

  let oc = open_out bench_egraph_json in
  let records = List.rev !json_records in
  Printf.fprintf oc "{\n  \"schema\": \"entangle-bench-egraph/3\",\n";
  Printf.fprintf oc "  \"cert_recheck_s\": %.6f,\n" cert_recheck_s;
  Printf.fprintf oc "  \"cert_export_s\": %.6f,\n" cert_export_s;
  Printf.fprintf oc "  \"cert_verify_s\": %.6f,\n" cert_verify_s;
  Printf.fprintf oc "  \"cert_bundle_bytes\": %d,\n" cert_bytes;
  Printf.fprintf oc "  \"cert_verify_speedup\": %.2f,\n" cert_speedup;
  Printf.fprintf oc "  \"sweep_total_matches_simple\": %d,\n" !total_simple;
  Printf.fprintf oc "  \"sweep_total_matches_incremental\": %d,\n" !total_incr;
  Printf.fprintf oc "  \"sweep_match_reduction\": %.4f,\n" ratio;
  Printf.fprintf oc "  \"parallel_verdicts_agree\": %b,\n" !par_agree;
  Printf.fprintf oc "  \"all_verdicts_agree\": %b,\n"
    (!zoo_agree && !sweep_agree && !par_agree);
  Printf.fprintf oc "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" r
        (if i = List.length records - 1 then "" else ","))
    records;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Fmt.pr "wrote %s (%d runs)@." bench_egraph_json (List.length records);
  emit_reference_trace ()

(* --- Smoke: scheduler verdict equivalence as a build gate --------------- *)

(* Fast enough for the @bench-smoke dune alias: the regression model and
   one bug case under every scheduler configuration. Exits non-zero when
   any configuration changes a verdict, so `dune build @bench-smoke`
   fails if a scheduler change breaks soundness or completeness. *)
let smoke () =
  section "Bench smoke: scheduler verdict equivalence";
  let failures = ref 0 in
  let expect name config_name expected actual =
    let ok = String.equal actual expected in
    if not ok then incr failures;
    Fmt.pr "%-16s %-20s %-10s (expected %s)  %s@." name config_name actual
      expected
      (if ok then "ok" else "FAIL")
  in
  List.iter
    (fun (config_name, config) ->
      expect "regression" config_name "refines"
        (verdict_str (Instance.check ~config (Regression.build ())));
      expect "bug-6" config_name "detected"
        (match Bugs.run ~config (Bugs.case 6) with
        | Bugs.Detected _ -> "detected"
        | Bugs.Missed -> "MISSED"))
    scheduler_configs;
  if !failures > 0 then begin
    Fmt.epr "bench smoke: %d verdict change(s)@." !failures;
    exit 1
  end;
  Fmt.pr "all verdicts stable@."

(* --- Counter micro-benchmark ------------------------------------------- *)

(* Satellite check for the O(1) cached node counter: time [num_nodes]
   (cached) against [Debug.recompute_num_nodes] (O(graph)) on a
   saturated GPT e-graph, and verify they agree. *)
let counters () =
  section "Micro-benchmark: cached num_nodes vs recomputation";
  let module E = Entangle_egraph.Egraph in
  let g = E.create () in
  (* Populate with a few thousand nodes: a deep chain of sums. *)
  let sd = Entangle_symbolic.Symdim.of_int in
  let x = E.add_leaf g (Entangle_ir.Tensor.create ~name:"x" [ sd 4; sd 4 ]) in
  let acc = ref x in
  for _ = 1 to 3000 do
    acc := E.add_op g Entangle_ir.Op.Add [ !acc; x ]
  done;
  E.rebuild g;
  let time_loop f =
    let t0 = Unix.gettimeofday () in
    let r = ref 0 in
    for _ = 1 to 10_000 do
      r := f g
    done;
    (Unix.gettimeofday () -. t0, !r)
  in
  let cached_t, cached = time_loop E.num_nodes in
  let recomputed_t, recomputed = time_loop E.Debug.recompute_num_nodes in
  Fmt.pr "%-28s %12.6f s  (10k calls, %d nodes)@." "cached num_nodes"
    cached_t cached;
  Fmt.pr "%-28s %12.6f s  (10k calls, %d nodes)@." "recompute_num_nodes"
    recomputed_t recomputed;
  Fmt.pr "agreement: %s;  speedup: %.0fx@."
    (if cached = recomputed then "exact" else "MISMATCH")
    (recomputed_t /. Float.max 1e-9 cached_t);
  if cached <> recomputed then exit 1;

  (* The tracing API's zero-overhead claim: a disabled sink behind the
     [Sink.enabled] guard used at every hot call site must not allocate.
     Each loop iteration takes the same guarded path instrumented code
     takes; with [Sink.null] the args list is never built, so minor-heap
     words must stay flat. The enabled Collect sink is measured alongside
     for contrast. *)
  let module Trace = Entangle_trace in
  section "Micro-benchmark: null-sink emission cost";
  let iters = 1_000_000 in
  let guarded_emits sink =
    let module Sink = Trace.Sink in
    let module Event = Trace.Event in
    for i = 1 to iters do
      if Sink.enabled sink then
        Sink.instant sink ~cat:"bench" "tick" ~args:[ ("i", Event.Int i) ]
    done
  in
  let words_during f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  ignore (words_during (fun () -> guarded_emits Trace.Sink.null));
  let null_words = words_during (fun () -> guarded_emits Trace.Sink.null) in
  let collect = Trace.Collect.create () in
  let collect_words =
    words_during (fun () -> guarded_emits (Trace.Collect.sink collect))
  in
  Fmt.pr "%-28s %12.0f minor words  (%d guarded emits)@." "null sink"
    null_words iters;
  Fmt.pr "%-28s %12.0f minor words  (%d events collected)@." "collect sink"
    collect_words
    (Trace.Collect.length collect);
  if null_words > 0. then begin
    Fmt.epr "null sink allocated %.0f minor words; guard is not free@."
      null_words;
    exit 1
  end;
  Fmt.pr "null sink: zero allocation@."

(* --- Cache smoke: deterministic cold/warm/invalidate gate ---------------- *)

(* The @cache-smoke dune alias: a fresh store must miss on every
   operator, hit on every operator (with zero saturation work and the
   same verdict) when re-checked, and miss again once the search
   configuration changes. Exits non-zero on any violation. *)
let cache_smoke () =
  section "Cache smoke: cold / warm / invalidate";
  let failures = ref 0 in
  let expect what ok =
    Fmt.pr "%-58s %s@." what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  with_temp_cache (fun cache ->
      let base = Entangle.Config.default in
      let run label config =
        let inst = Regression.build ~microbatches:2 () in
        let _, result =
          time_check ~config:(Entangle.Config.with_cache (Some cache) config)
            inst
        in
        (label, result)
      in
      let stats (_, r) = result_stats r in
      let verdict (_, r) = verdict_str r in

      let cold = run "cold" base in
      let ops = (stats cold).Entangle.Refine.operators_processed in
      expect "cold run: no hits" ((stats cold).Entangle.Refine.cache_hits = 0);
      expect
        (Fmt.str "cold run: one miss per operator (%d)" ops)
        ((stats cold).Entangle.Refine.cache_misses = ops && ops > 0);

      let warm = run "warm" base in
      expect
        (Fmt.str "warm run: every operator served from cache (%d)" ops)
        ((stats warm).Entangle.Refine.cache_hits
         = (stats warm).Entangle.Refine.operators_processed
        && (stats warm).Entangle.Refine.cache_misses = 0);
      expect "warm run: zero saturation iterations"
        ((stats warm).Entangle.Refine.saturation_iterations = 0);
      expect "warm run: verdict unchanged" (verdict cold = verdict warm);

      let invalidated =
        run "invalidated"
          (Entangle.Config.with_scheduler Entangle_egraph.Runner.Simple base
          |> Entangle.Config.with_incremental_matching false)
      in
      expect "config change invalidates: no hits"
        ((stats invalidated).Entangle.Refine.cache_hits = 0
        && (stats invalidated).Entangle.Refine.cache_misses > 0);
      expect "config change: verdict unchanged" (verdict cold = verdict invalidated);

      let rewarm =
        run "re-warm"
          (Entangle.Config.with_scheduler Entangle_egraph.Runner.Simple base
          |> Entangle.Config.with_incremental_matching false)
      in
      expect "both keys coexist: re-warm hits again"
        ((stats rewarm).Entangle.Refine.cache_hits
         = (stats rewarm).Entangle.Refine.operators_processed
        && (stats rewarm).Entangle.Refine.cache_misses = 0));
  if !failures > 0 then begin
    Fmt.epr "cache smoke: %d violation(s)@." !failures;
    exit 1
  end;
  Fmt.pr "cache behaves deterministically@."

(* --- Par smoke: -j 1 / -j N equality as a build gate --------------------- *)

(* The @par-smoke dune alias: a fast zoo subset checked at -j 1 and
   -j 4 must produce identical verdicts and identical statistics
   (modulo wall time). Exits non-zero on any divergence, so
   `dune build @par-smoke` fails if the parallel scheduler ever stops
   being observationally equivalent to the sequential loop. *)
let par_smoke () =
  section "Par smoke: -j 1 vs -j 4 verdict and statistics equality";
  let failures = ref 0 in
  let expect what ok =
    Fmt.pr "%-58s %s@." what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let strip (s : Entangle.Refine.stats) =
    { s with Entangle.Refine.wall_time_s = 0. }
  in
  List.iter
    (fun name ->
      match Zoo.by_name name with
      | None -> expect (Fmt.str "%s: found in zoo" name) false
      | Some _ ->
          let run jobs =
            let inst = Option.get (Zoo.by_name name) in
            let config =
              Entangle.Config.default |> Entangle.Config.with_jobs jobs
            in
            Instance.check ~config inst
          in
          let seq = run 1 and par = run 4 in
          expect
            (Fmt.str "%s: verdicts agree" name)
            (verdict_str seq = verdict_str par);
          expect
            (Fmt.str "%s: statistics identical modulo wall time" name)
            (strip (result_stats seq) = strip (result_stats par)))
    [ "regression"; "gpt"; "qwen2" ];
  (* One failing lowering too: faults and skips must merge identically. *)
  (let run jobs =
     Bugs.run
       ~config:(Entangle.Config.default |> Entangle.Config.with_jobs jobs)
       (Bugs.case 7)
   in
   expect "bug-7: detected at both job counts"
     (match (run 1, run 4) with
     | Bugs.Detected _, Bugs.Detected _ -> true
     | _ -> false));
  if !failures > 0 then begin
    Fmt.epr "par smoke: %d divergence(s)@." !failures;
    exit 1
  end;
  Fmt.pr "parallel checking is observationally sequential@."

(* --- Serve smoke: daemon fidelity / warm cache / version negotiation ----- *)

(* The @serve-smoke dune alias. Three daemons on one temp socket, in
   sequence:
   1. uncached: remote verdicts, exit codes and statistics (modulo
      wall time) must be identical to local runs for a zoo subset and
      three bug-injected lowerings; a future protocol version must be
      rejected with a structured frame that names both versions; a
      cache request against an uncached daemon is a structured
      bad-request, and neither wedges the daemon.
   2. cached, traced: a GPT re-check on the warm daemon must be served
      entirely from cache with zero saturation — asserted on the
      daemon's own trace stream, not just the reply statistics — and
      namespaces must isolate clients sharing the store.
   3. byte-budgeted: after checking, the store must respect the LRU
      byte budget with evictions visible in the wire stats. *)
let serve_smoke () =
  let module Srv = Entangle_serve.Server in
  let module Cl = Entangle_serve.Client in
  let module P = Entangle_serve.Protocol in
  let module Trace = Entangle_trace in
  section "Serve smoke: remote fidelity / warm daemon / version negotiation";
  let failures = ref 0 in
  let expect what ok =
    Fmt.pr "%-58s %s@." what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-serve-smoke.%d.sock" (Unix.getpid ()))
  in
  let strip (s : Entangle.Refine.stats) =
    { s with Entangle.Refine.wall_time_s = 0. }
  in
  let local_tag = function
    | Ok _ -> "refines"
    | Error (f : Entangle.Refine.failure) -> (
        match f.verdict with
        | Entangle.Refine.Unmapped _ -> "unmapped"
        | Entangle.Refine.Inconclusive _ -> "inconclusive"
        | Entangle.Refine.Internal _ -> "internal")
  in
  let with_server ?cache config f =
    match Srv.create ~config ?cache ~socket:sock () with
    | Error e ->
        Fmt.epr "cannot start server: %s@." (Srv.error_message e);
        exit 1
    | Ok server ->
        let d = Domain.spawn (fun () -> Srv.run server) in
        Fun.protect
          ~finally:(fun () ->
            (match Cl.connect ~socket:sock () with
            | Ok c -> ignore (Cl.shutdown c)
            | Error _ -> ());
            Domain.join d)
          (fun () -> f server)
  in
  let with_client f =
    match Cl.connect ~socket:sock () with
    | Error e ->
        Fmt.epr "cannot connect: %s@." (Cl.error_message e);
        exit 1
    | Ok client -> Fun.protect ~finally:(fun () -> Cl.close client) (fun () -> f client)
  in
  let remote_check client ?namespace (inst : Instance.t) =
    let options =
      {
        P.default_options with
        P.family =
          Some (Entangle_lemmas.Registry.family_name inst.Instance.family);
        namespace;
      }
    in
    match
      Cl.check client ~options
        ~gs:(Entangle_ir.Serial.graph_to_sexp inst.Instance.gs)
        ~gd:(Entangle_ir.Serial.graph_to_sexp inst.Instance.gd)
        ~relation:(Entangle.Relation_io.to_sexp inst.Instance.input_relation)
        ()
    with
    | Ok (P.Checked r) -> r
    | Ok (P.Error_reply { message; _ }) ->
        Fmt.epr "daemon error: %s@." message;
        exit 1
    | Ok _ ->
        Fmt.epr "unexpected daemon reply@.";
        exit 1
    | Error e ->
        Fmt.epr "transport error: %s@." (Cl.error_message e);
        exit 1
  in

  (* 1. Fidelity against local runs, on an uncached daemon. *)
  let fidelity_insts =
    [ Regression.build ~microbatches:2 (); Gpt.build ~layers:1 ~degree:2 () ]
    @ List.map (fun id -> (Bugs.case id).Bugs.instance) [ 1; 6; 7 ]
  in
  with_server Entangle.Config.default (fun _server ->
      with_client (fun client ->
          expect "ping answers pong" (Cl.ping client = Ok ());
          (match Cl.describe client with
          | Ok json ->
              let schema = {|"schema": "entangle/serve/1"|} in
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec at i =
                  i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
                in
                at 0
              in
              expect "describe carries the entangle/serve/1 envelope"
                (contains json schema)
          | Error _ -> expect "describe carries the entangle/serve/1 envelope" false);
          List.iter
            (fun (inst : Instance.t) ->
              let local = Instance.check inst in
              let r = remote_check client inst in
              expect
                (Fmt.str "%s: remote verdict = local" inst.Instance.name)
                (r.P.verdict = local_tag local);
              expect
                (Fmt.str "%s: remote exit code = local" inst.Instance.name)
                (r.P.exit_code = Entangle.Refine.exit_code local);
              expect
                (Fmt.str "%s: remote stats = local modulo wall time"
                   inst.Instance.name)
                (strip r.P.stats = strip (result_stats local)))
            fidelity_insts;
          match Cl.cache_stats client with
          | Ok (P.Error_reply { code = P.Bad_request; _ }) ->
              expect "uncached daemon: cache-stats is a structured bad-request"
                true
          | _ ->
              expect "uncached daemon: cache-stats is a structured bad-request"
                false);
      (* A client from the future is rejected with a frame naming both
         versions — and the daemon keeps serving afterwards. *)
      (match Cl.raw_hello ~socket:sock ~protocol:(P.protocol_version + 1) with
      | Ok (P.Rejected { expected; got; _ }) ->
          expect "future protocol: structured rejection names versions"
            (expected = P.protocol_version && got = P.protocol_version + 1)
      | _ -> expect "future protocol: structured rejection names versions" false);
      with_client (fun client ->
          expect "daemon survives the rejected client" (Cl.ping client = Ok ())));

  (* 2. Warm daemon: cached re-check with zero saturation, asserted on
     the daemon's own trace stream; namespace isolation. *)
  with_temp_cache (fun cache ->
      let collector = Trace.Collect.create () in
      let config =
        Entangle.Config.default
        |> Entangle.Config.with_trace (Trace.Collect.sink collector)
      in
      with_server ~cache config (fun _server ->
          with_client (fun client ->
              let gpt () = Gpt.build ~layers:1 ~degree:2 () in
              let iteration_events () =
                List.length
                  (List.filter
                     (fun (e : Trace.Event.t) -> e.cat = "iteration")
                     (Trace.Collect.events collector))
              in
              let cold = remote_check client (gpt ()) in
              let ops = cold.P.stats.Entangle.Refine.operators_processed in
              expect "cold daemon check: one miss per operator"
                (cold.P.stats.Entangle.Refine.cache_misses = ops
                && cold.P.stats.Entangle.Refine.cache_hits = 0
                && ops > 0);
              let iterations_cold = iteration_events () in
              expect "cold daemon check: saturation ran" (iterations_cold > 0);
              let warm = remote_check client (gpt ()) in
              expect "warm GPT re-check: every operator served from cache"
                (warm.P.stats.Entangle.Refine.cache_hits = ops
                && warm.P.stats.Entangle.Refine.cache_misses = 0);
              expect "warm GPT re-check: zero saturation in reply stats"
                (warm.P.stats.Entangle.Refine.saturation_iterations = 0);
              expect "warm GPT re-check: no saturation events on the trace"
                (iteration_events () = iterations_cold);
              expect "warm GPT re-check: verdict unchanged"
                (warm.P.verdict = cold.P.verdict && warm.P.exit_code = 0);
              expect "trace stream carries cat:serve request spans"
                (List.exists
                   (fun (e : Trace.Event.t) -> e.cat = "serve")
                   (Trace.Collect.events collector));
              let tenant = remote_check client ~namespace:"tenant-b" (gpt ()) in
              expect "fresh namespace: blind to the shared namespace"
                (tenant.P.stats.Entangle.Refine.cache_hits = 0
                && tenant.P.stats.Entangle.Refine.cache_misses = ops);
              let tenant2 = remote_check client ~namespace:"tenant-b" (gpt ()) in
              expect "namespace re-check: warm within its own namespace"
                (tenant2.P.stats.Entangle.Refine.cache_hits = ops);
              (match Cl.cache_stats client with
              | Ok (P.Cache_stats_reply r) ->
                  expect "daemon cache-stats sees both namespaces' entries"
                    (r.P.entries > ops)
              | _ ->
                  expect "daemon cache-stats sees both namespaces' entries"
                    false);
              match Cl.cache_clear client with
              | Ok (P.Cache_cleared n) ->
                  expect "cache-clear over the wire removes entries" (n > 0)
              | _ -> expect "cache-clear over the wire removes entries" false)));

  (* 3. A byte-budgeted daemon store: the LRU sweep keeps the store
     within budget, visible in the wire statistics. *)
  let lru_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-serve-smoke-lru.%d" (Unix.getpid ()))
  in
  let lru_budget = 200 in
  Fun.protect
    ~finally:(fun () -> try rm_rf lru_dir with Sys_error _ -> ())
    (fun () ->
      let budget =
        { Entangle_cache.Store.max_bytes = Some lru_budget; max_age_s = None }
      in
      match Entangle_cache.Cache.create ~dir:lru_dir ~budget () with
      | Error e ->
          Fmt.epr "cannot open budgeted cache: %s@." e;
          exit 1
      | Ok cache ->
          with_server ~cache Entangle.Config.default (fun _server ->
              with_client (fun client ->
                  let r = remote_check client (Regression.build ()) in
                  expect "budgeted daemon: check still succeeds"
                    (r.P.exit_code = 0);
                  match Cl.cache_stats client with
                  | Ok (P.Cache_stats_reply s) ->
                      expect
                        (Fmt.str "store respects the %d-byte LRU budget"
                           lru_budget)
                        (s.P.bytes <= lru_budget
                        && s.P.max_bytes = Some lru_budget);
                      expect "sweep evicted least-recently-used entries"
                        (s.P.evicted_entries > 0)
                  | _ ->
                      expect "budgeted daemon reports stats over the wire"
                        false)));
  if !failures > 0 then begin
    Fmt.epr "serve smoke: %d violation(s)@." !failures;
    exit 1
  end;
  Fmt.pr "the resident service is faithful, warm and budgeted@."

(* --- Cert smoke: tamper-evident exchange as a build gate ----------------- *)

(* The @cert-smoke dune alias: export -> verify must round-trip on the
   whole zoo; each row of the tamper matrix must be rejected with its
   own structured CERT code; and the daemon must speak cert-fetch and
   cert-push in both directions over a real socket, with the client
   re-verifying fetched bundles through the independent minimal
   verifier. *)
let cert_smoke () =
  let module CE = Entangle_certexport in
  let module Srv = Entangle_serve.Server in
  let module Cl = Entangle_serve.Client in
  let module P = Entangle_serve.Protocol in
  section "Cert smoke: round-trip / tamper matrix / daemon exchange";
  let failures = ref 0 in
  let expect what ok =
    Fmt.pr "%-58s %s@." what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let export (inst : Instance.t) =
    match Instance.check inst with
    | Error _ -> None
    | Ok success -> (
        match
          Entangle.Cert_export.bundle ~producer:"entangle-bench"
            ~gs:inst.Instance.gs ~gd:inst.Instance.gd ~env:inst.Instance.env
            ~input_relation:inst.Instance.input_relation success
        with
        | Error e ->
            Fmt.epr "%s: export failed: %s@." inst.Instance.name e;
            exit 1
        | Ok b -> Some (CE.Bundle.to_string b))
  in

  (* 1. Export -> verify round-trips on the zoo. *)
  List.iter
    (fun name ->
      match Zoo.by_name name with
      | None -> ()
      | Some inst -> (
          match export inst with
          | None -> Fmt.pr "%-58s (does not refine; skipped)@." name
          | Some text -> (
              match CE.Verify.check_string text with
              | Ok r ->
                  expect
                    (Fmt.str "%s: exported bundle verifies (%d ops)" name
                       r.CE.Verify.operators)
                    (r.CE.Verify.operators > 0)
              | Error e ->
                  Fmt.epr "%s: %a@." name CE.Cert_error.pp e;
                  expect (Fmt.str "%s: exported bundle verifies" name) false)))
    Zoo.names;

  (* 2. The tamper matrix: one deterministic mutation per defense
     layer, each rejected with its own CERT code. *)
  let reference =
    match export (Regression.build ~microbatches:2 ()) with
    | Some text -> text
    | None ->
        Fmt.epr "regression did not refine; cannot build tamper matrix@.";
        exit 1
  in
  let code_of text =
    match CE.Verify.check_string text with
    | Ok _ -> "accepted"
    | Error e -> CE.Cert_error.code_string e.CE.Cert_error.code
  in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else at (i + 1)
    in
    at 0
  in
  let mutate_at pos f text =
    let b = Bytes.of_string text in
    Bytes.set b pos (f (Bytes.get b pos));
    Bytes.to_string b
  in
  expect "pristine bundle accepted" (code_of reference = "accepted");
  expect "truncation rejected as CERT001 parse-error"
    (code_of (String.sub reference 0 (String.length reference / 2))
    = "CERT001");
  (let skew =
     match find_sub reference "(schema 1)" with
     | Some i ->
         String.sub reference 0 i
         ^ "(schema 99)"
         ^ String.sub reference
             (i + String.length "(schema 1)")
             (String.length reference - i - String.length "(schema 1)")
     | None -> reference
   in
   expect "version skew rejected as CERT002" (code_of skew = "CERT002"));
  (let flipped =
     (* flip one digit of an env binding: a single-byte payload change
        the per-section content digest must catch *)
     match find_sub reference "(section env" with
     | None -> reference
     | Some i ->
         let rec digit j =
           if j >= String.length reference then None
           else
             match reference.[j] with
             | '0' .. '9' -> Some j
             | _ -> digit (j + 1)
         in
         (match digit (i + String.length "(section env") with
         | None -> reference
         | Some j ->
             mutate_at j (fun c -> if c = '9' then '8' else Char.chr (Char.code c + 1)) reference)
   in
   expect "section bit-flip rejected as CERT004" (code_of flipped = "CERT004"));
  (let rebound =
     (* swap one hex digit of the manifest's gs statement fingerprint:
        sections still digest clean, but the bundle now claims to
        certify a different statement *)
     match find_sub reference "(statement" with
     | None -> reference
     | Some i -> (
         match find_sub (String.sub reference i (String.length reference - i)) "(gs " with
         | None -> reference
         | Some off ->
             mutate_at (i + off + 4) (fun c -> if c = '0' then '1' else '0') reference)
   in
   expect "statement rebinding rejected as CERT005"
     (code_of rebound = "CERT005"));

  (* 3. The daemon, both directions, over a real socket. *)
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-cert-smoke.%d.sock" (Unix.getpid ()))
  in
  (match Srv.create ~config:Entangle.Config.default ~socket:sock () with
  | Error e ->
      Fmt.epr "cannot start server: %s@." (Srv.error_message e);
      exit 1
  | Ok server ->
      let d = Domain.spawn (fun () -> Srv.run server) in
      Fun.protect
        ~finally:(fun () ->
          (match Cl.connect ~socket:sock () with
          | Ok c -> ignore (Cl.shutdown c)
          | Error _ -> ());
          Domain.join d)
        (fun () ->
          match Cl.connect ~socket:sock () with
          | Error e ->
              Fmt.epr "cannot connect: %s@." (Cl.error_message e);
              exit 1
          | Ok client ->
              Fun.protect
                ~finally:(fun () -> Cl.close client)
                (fun () ->
                  let inst = Regression.build ~microbatches:2 () in
                  (* fetch: the daemon checks and exports; the client
                     re-verifies with the minimal verifier *)
                  (match
                     Cl.cert_fetch client
                       ~options:
                         {
                           P.default_options with
                           P.family =
                             Some
                               (Entangle_lemmas.Registry.family_name
                                  inst.Instance.family);
                         }
                       ~gs:(Entangle_ir.Serial.graph_to_sexp inst.Instance.gs)
                       ~gd:(Entangle_ir.Serial.graph_to_sexp inst.Instance.gd)
                       ~relation:
                         (Entangle.Relation_io.to_sexp
                            inst.Instance.input_relation)
                       ~env:
                         (Entangle.Cert_export.env_bindings inst.Instance.env)
                       ()
                   with
                  | Ok (P.Cert_bundle { bundle }) ->
                      expect "cert-fetch: client re-verification accepts"
                        (code_of bundle = "accepted")
                  | _ -> expect "cert-fetch: daemon returns a bundle" false);
                  (* push: the daemon verifies a client-produced bundle *)
                  (match Cl.cert_push client ~bundle:reference with
                  | Ok v ->
                      expect "cert-push: daemon accepts a sound bundle"
                        (v.P.accepted && v.P.cert_id <> None)
                  | Error _ ->
                      expect "cert-push: daemon accepts a sound bundle" false);
                  match
                    Cl.cert_push client
                      ~bundle:
                        (String.sub reference 0 (String.length reference / 2))
                  with
                  | Ok v ->
                      expect "cert-push: daemon rejects truncation as CERT001"
                        ((not v.P.accepted) && v.P.cert_code = Some "CERT001")
                  | Error _ ->
                      expect "cert-push: daemon rejects truncation as CERT001"
                        false)));
  if !failures > 0 then begin
    Fmt.epr "cert smoke: %d violation(s)@." !failures;
    exit 1
  end;
  Fmt.pr "certificates round-trip, tampering is caught, the daemon concurs@."

(* Chaos gate for the daemon (`dune build @chaos-smoke`): byzantine
   clients and injected faults against one live server, deterministic
   end to end.

   1. Failpoint scenarios, one at a time (scoped with
      [Failpoint.with_armed] so no trigger leaks): a torn reply frame
      (serve.frame.write) that the retry ladder must absorb, and an
      accept(2) failure (serve.accept) the loop must survive and count.
   2. The soak: six concurrent clients — two well-behaved (repeated
      checks riding the retry ladder, and a streamed check-batch), a
      slow-loris writer that stalls inside a frame, a mid-request
      disconnector, a garbage sender, and a handler-crash client
      (serve.dispatch.describe armed for the whole soak). Well-behaved
      clients must get verdicts identical to local runs; the byzantine
      ones must cost exactly their structured rejection or timeout.
   3. Counters: accepted / timed-out / rejected-busy / accept-failures
      must reflect exactly what the soak did.
   4. SIGTERM drain: a held-open idle connection, then a real SIGTERM
      against [run ~signals:true] — the loop must return, wake and
      close the idle client, unlink the socket and count the drain.
   5. Admission: a max-clients=1 daemon rejects the second client with
      a structured busy frame, and the retry ladder turns the rejection
      into a success once the slot frees. *)
let chaos_smoke () =
  let module Srv = Entangle_serve.Server in
  let module Cl = Entangle_serve.Client in
  let module P = Entangle_serve.Protocol in
  let module F = Entangle_failpoint.Failpoint in
  section "Chaos smoke: byzantine clients, failpoints, graceful drain";
  (* The byzantine clients write into dead sockets on purpose; that
     must surface as EPIPE results, not a fatal SIGPIPE. (The daemon
     ignores SIGPIPE only while [run] is live.) *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let failures = ref 0 in
  let expect what ok =
    Fmt.pr "%-58s %s@." what (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "entangle-chaos-smoke.%d.sock" (Unix.getpid ()))
  in
  let strip (s : Entangle.Refine.stats) =
    { s with Entangle.Refine.wall_time_s = 0. }
  in
  let family inst =
    Some (Entangle_lemmas.Registry.family_name inst.Instance.family)
  in
  let check_req (inst : Instance.t) =
    P.Check
      {
        options = { P.default_options with P.family = family inst };
        gs = Entangle_ir.Serial.graph_to_sexp inst.Instance.gs;
        gd = Entangle_ir.Serial.graph_to_sexp inst.Instance.gd;
        relation = Entangle.Relation_io.to_sexp inst.Instance.input_relation;
      }
  in
  let batch_instance (inst : Instance.t) =
    {
      P.gs = Entangle_ir.Serial.graph_to_sexp inst.Instance.gs;
      gd = Entangle_ir.Serial.graph_to_sexp inst.Instance.gd;
      relation = Entangle.Relation_io.to_sexp inst.Instance.input_relation;
    }
  in
  (* One deterministic baseline: remote verdicts must match this. *)
  let reg = Regression.build ~microbatches:2 () in
  let baseline = Instance.check reg in
  let base_exit = Entangle.Refine.exit_code baseline in
  let base_stats = strip (result_stats baseline) in
  let matches (r : P.check_reply) =
    r.P.exit_code = base_exit && strip r.P.stats = base_stats
  in
  let ladder =
    {
      Cl.default_retry with
      Cl.retries = 8;
      timeout_s = Some 10.;
      jitter_seed = 0x5eed;
    }
  in
  let raw_dial () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let raw_handshake fd =
    let io = P.Io.of_fd fd in
    let dl = Some (Unix.gettimeofday () +. 10.) in
    ignore
      (P.Io.write_frame ?deadline:dl io
         (P.hello_to_string
            { P.protocol = P.protocol_version; client = "byzantine" }));
    ignore (P.Io.read_frame ?deadline:dl io);
    io
  in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in

  (* --- one server for the failpoint scenarios, the soak and the drain --- *)
  (match
     Srv.create ~name:"chaos" ~max_clients:8 ~io_timeout_s:1.0
       ~drain_timeout_s:10. ~socket:sock ()
   with
  | Error e ->
      Fmt.epr "cannot start server: %s@." (Srv.error_message e);
      exit 1
  | Ok server ->
      let d = Domain.spawn (fun () -> Srv.run ~signals:true server) in

      (* 1a. Torn reply frame: the daemon emits half the encoded frame
         and drops the connection; the retry ladder redials and the
         second attempt answers. *)
      F.with_armed "serve.frame.write" (F.Nth 1) (fun () ->
          match Cl.call ~retry:ladder ~socket:sock P.Ping with
          | Ok P.Pong ->
              expect "torn reply frame: retry ladder absorbs it" true
          | _ -> expect "torn reply frame: retry ladder absorbs it" false);

      (* 1b. Accept failure: the loop counts it and accepts the same
         pending connection on the next pass — the client just waits. *)
      F.with_armed "serve.accept" (F.Nth 1) (fun () ->
          match Cl.connect ~timeout_s:10. ~socket:sock () with
          | Ok c ->
              expect "accept failure: connection survives the hiccup"
                (Cl.ping c = Ok ());
              Cl.close c
          | Error _ ->
              expect "accept failure: connection survives the hiccup" false);

      (* 2. The soak: six concurrent clients against the armed daemon. *)
      let w1_replies = ref [] in
      let w2_items = ref None in
      let garbage_reply = ref None in
      let crash_kinds = ref [] in
      F.with_armed "serve.dispatch.describe" (F.Every 1) (fun () ->
          let threads =
            [
              (* well-behaved: three checks, each riding the ladder *)
              Thread.create
                (fun () ->
                  for _ = 1 to 3 do
                    match Cl.call ~retry:ladder ~socket:sock (check_req reg) with
                    | Ok (P.Checked r) -> w1_replies := r :: !w1_replies
                    | Ok _ | Error _ -> ()
                  done)
                ();
              (* well-behaved: one streamed batch, retried whole *)
              Thread.create
                (fun () ->
                  let instances =
                    [
                      batch_instance (Regression.build ~microbatches:2 ());
                      batch_instance (Regression.build ());
                    ]
                  in
                  let options =
                    { P.default_options with P.family = family reg }
                  in
                  let rec attempt n =
                    match Cl.connect ~timeout_s:10. ~socket:sock () with
                    | Error _ when n > 0 ->
                        Thread.delay 0.1;
                        attempt (n - 1)
                    | Error _ -> ()
                    | Ok c -> (
                        let r = Cl.check_batch c ~options ~instances () in
                        Cl.close c;
                        match r with
                        | Ok items -> w2_items := Some items
                        | Error _ when n > 0 ->
                            Thread.delay 0.1;
                            attempt (n - 1)
                        | Error _ -> ())
                  in
                  attempt 5)
                ();
              (* slow loris: stalls inside a frame's length prefix *)
              Thread.create
                (fun () ->
                  let fd = raw_dial () in
                  let io = raw_handshake fd in
                  ignore (P.Io.write_raw io "12");
                  Thread.delay 2.2;
                  (* the daemon timed the read out and hung up *)
                  ignore (P.Io.write_raw io "3");
                  close_fd fd)
                ();
              (* mid-request disconnect: half a frame, then gone *)
              Thread.create
                (fun () ->
                  let fd = raw_dial () in
                  let io = raw_handshake fd in
                  let enc = P.encode_frame (P.request_to_string ~id:7 P.Ping) in
                  ignore
                    (P.Io.write_raw io
                       (String.sub enc 0 (String.length enc / 2)));
                  close_fd fd)
                ();
              (* garbage: a well-framed payload that is not a request *)
              Thread.create
                (fun () ->
                  let fd = raw_dial () in
                  let io = raw_handshake fd in
                  let dl = Some (Unix.gettimeofday () +. 10.) in
                  ignore
                    (P.Io.write_frame ?deadline:dl io "(no such request)");
                  (match P.Io.read_frame ?deadline:dl io with
                  | Ok payload -> garbage_reply := Some payload
                  | Error _ -> ());
                  close_fd fd)
                ();
              (* handler crash: every describe dispatch is armed *)
              Thread.create
                (fun () ->
                  match Cl.connect ~timeout_s:10. ~socket:sock () with
                  | Error _ -> ()
                  | Ok c ->
                      for _ = 1 to 2 do
                        match Cl.describe c with
                        | Error e -> crash_kinds := e.Cl.kind :: !crash_kinds
                        | Ok _ -> ()
                      done;
                      Cl.close c)
                ();
            ]
          in
          List.iter Thread.join threads);
      expect "soak: both well-behaved clients got all verdicts"
        (List.length !w1_replies = 3 && !w2_items <> None);
      expect "soak: repeated checks byte-identical to the local run"
        (List.for_all matches !w1_replies);
      (match !w2_items with
      | Some [ P.Checked a; P.Checked b ] ->
          expect "soak: batch items stream in order, verdicts = local"
            (matches a && b.P.exit_code = 0)
      | _ -> expect "soak: batch items stream in order, verdicts = local" false);
      (match !garbage_reply with
      | Some payload -> (
          match P.response_of_string payload with
          | Ok (0, P.Error_reply { code = P.Bad_request; _ }) ->
              expect "soak: garbage gets a structured bad-request" true
          | _ -> expect "soak: garbage gets a structured bad-request" false)
      | None -> expect "soak: garbage gets a structured bad-request" false);
      expect "soak: handler crash surfaces as a structured internal error"
        (!crash_kinds <> []
        && List.for_all (fun k -> k = Cl.App) !crash_kinds);

      (* 3. The counters must reflect exactly what the soak did. *)
      (match Cl.call ~retry:ladder ~socket:sock P.Server_stats with
      | Ok (P.Server_stats_reply s) ->
          expect "counters: accepted covers every client"
            (s.P.accepted >= 9);
          expect "counters: the slow loris cost one timeout"
            (s.P.timed_out >= 1);
          expect "counters: one injected accept failure"
            (s.P.accept_failures = 1);
          expect "counters: nobody was rejected busy" (s.P.rejected_busy = 0)
      | _ ->
          expect "counters: accepted covers every client" false;
          expect "counters: the slow loris cost one timeout" false;
          expect "counters: one injected accept failure" false;
          expect "counters: nobody was rejected busy" false);

      (* 4. SIGTERM drain: a held-open idle connection must be woken
         and closed, the loop must return, the socket must vanish. *)
      let idle =
        match Cl.connect ~timeout_s:10. ~socket:sock () with
        | Ok c -> Some c
        | Error _ -> None
      in
      expect "drain: an idle client is connected" (idle <> None);
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Domain.join d;
      expect "drain: SIGTERM returns the accept loop" true;
      expect "drain: the socket file is unlinked" (not (Sys.file_exists sock));
      expect "drain: the daemon knew it was draining" (Srv.draining server);
      let s = Srv.stats server in
      expect "drain: the idle connection was woken and counted"
        (s.P.drained >= 1 && s.P.active = 0);
      (match idle with
      | Some c ->
          expect "drain: the idle client sees a dead connection"
            (match Cl.ping c with Error _ -> true | Ok () -> false);
          Cl.close c
      | None -> ()));

  (* 5. Admission: max-clients=1, a structured busy rejection, and the
     ladder turning it into a success once the slot frees. *)
  (match Srv.create ~name:"chaos-busy" ~max_clients:1 ~socket:sock () with
  | Error e ->
      Fmt.epr "cannot start busy server: %s@." (Srv.error_message e);
      exit 1
  | Ok server ->
      let d = Domain.spawn (fun () -> Srv.run server) in
      (match Cl.connect ~timeout_s:10. ~socket:sock () with
      | Error _ -> expect "admission: first client is admitted" false
      | Ok first ->
          expect "admission: first client is admitted" true;
          (match Cl.connect ~timeout_s:10. ~socket:sock () with
          | Error e ->
              expect "admission: second client gets a structured busy"
                (e.Cl.kind = Cl.Busy)
          | Ok c ->
              expect "admission: second client gets a structured busy" false;
              Cl.close c);
          let closer =
            Thread.create
              (fun () ->
                Thread.delay 0.3;
                Cl.close first)
              ()
          in
          (match Cl.call ~retry:ladder ~socket:sock P.Ping with
          | Ok P.Pong ->
              expect "admission: retry ladder wins once the slot frees" true
          | _ ->
              expect "admission: retry ladder wins once the slot frees" false);
          Thread.join closer);
      (match Cl.call ~retry:ladder ~socket:sock P.Shutdown with
      | Ok P.Bye -> expect "admission: shutdown acknowledged" true
      | _ -> expect "admission: shutdown acknowledged" false);
      Domain.join d;
      let s = Srv.stats server in
      expect "admission: the rejection was counted" (s.P.rejected_busy >= 1);
      expect "admission: socket unlinked after drain"
        (not (Sys.file_exists sock)));

  if !failures > 0 then begin
    Fmt.epr "chaos smoke: %d violation(s)@." !failures;
    exit 1
  end;
  Fmt.pr "the daemon survived every byzantine client and drained cleanly@."

(* --- Extensions beyond the paper's evaluation --------------------------- *)

let extensions () =
  section
    "Extensions: strategies the paper could not capture (section 6.1)";
  Fmt.pr "%-46s %10s %12s %s@." "instance" "operators" "time (s)" "verdict";
  List.iter
    (fun inst ->
      let secs, result = time_check inst in
      Fmt.pr "%-46s %10d %12.2f %s@." inst.Instance.name
        (Instance.operator_count inst)
        secs
        (match result with
        | Ok _ -> "refines"
        | Error f -> Fmt.str "FAILED at %a" Entangle_ir.Node.pp f.operator))
    [
      Train.data_parallel ();
      Train.data_parallel ~replicas:4 ();
      Train.pipeline ();
      Train.pipeline ~microbatches:4 ~layers:3 ();
      Train.linear_backward ();
      Train.linear_backward ~degree:4 ();
    ];
  Fmt.pr
    "@.(Backward graphs are produced by Entangle_ir.Autodiff, playing      TorchDynamo's role; DP gradient sync and PP microbatch accumulation      verify with the same lemma corpus.)@."

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

let perf () =
  section "Bechamel samples (one benchmark per experiment)";
  let open Bechamel in
  let benchmarks =
    [
      Test.make ~name:"fig3-regression" (Staged.stage (fun () ->
          ignore (Instance.check (Regression.build ()))));
      Test.make ~name:"fig3-gpt" (Staged.stage (fun () ->
          ignore (Instance.check (Gpt.build ~layers:1 ~degree:2 ()))));
      Test.make ~name:"fig4-gpt-degree4" (Staged.stage (fun () ->
          ignore (Instance.check (Gpt.build ~layers:1 ~degree:4 ~heads:4 ()))));
      Test.make ~name:"fig6-lemma-hits" (Staged.stage (fun () ->
          ignore (rule_hits (Instance.check (Qwen2.build ())))));
      Test.make ~name:"table3-bug6" (Staged.stage (fun () ->
          ignore (Bugs.run (Bugs.case 6))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 2.0) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
      in
      Hashtbl.iter
        (fun name wall ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock wall
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Fmt.pr "%-24s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-24s (no estimate)@." name)
        results)
    benchmarks

(* --- main -------------------------------------------------------------- *)

let () =
  let experiments =
    [
      ("fig3", fig3);
      ("fig4", fig4);
      ("fig5", fig5);
      ("fig6", fig6);
      ("table3", table3);
      ("ablation", ablation);
      ("extensions", extensions);
      ("smoke", smoke);
      ("cache-smoke", cache_smoke);
      ("par-smoke", par_smoke);
      ("serve-smoke", serve_smoke);
      ("cert-smoke", cert_smoke);
      ("chaos-smoke", chaos_smoke);
      ("counters", counters);
      ("perf", perf);
    ]
  in
  match Array.to_list Sys.argv with
  | _ :: name :: _ -> (
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown experiment %s; one of: %a@." name
            Fmt.(list ~sep:comma string)
            (List.map fst experiments);
          exit 124)
  | _ ->
      (* Everything except the sampling run, which takes minutes. *)
      List.iter
        (fun (name, f) -> if name <> "perf" then f ())
        experiments
