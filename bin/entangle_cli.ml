(* Command-line interface: verify built-in models, reproduce the bug
   case studies, and inspect the lemma corpus. *)

open Cmdliner
open Entangle_models
module Trace = Entangle_trace
module Failpoint = Entangle_failpoint.Failpoint

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

(* --- shared output/diagnostics options ---------------------------------- *)

(* One term for the flags every subcommand shares, instead of the
   per-command copies that used to drift: verbosity, JSON output, and
   the diagnostics sinks (--trace streams Chrome trace events to a
   file, --profile collects events and prints a summary table). *)
module Output_opts = struct
  type t = {
    verbose : bool;
    json : bool;
    trace : string option;
    profile : bool;
    deadline : float option;
    op_deadline : float option;
    keep_going : bool;
    no_retries : bool;
    failpoints : string option;
    cache_dir : string option;
    no_cache : bool;
    cache_verify : bool;
    cache_max_bytes : int option;
    cache_max_age_s : float option;
    jobs : int;
    remote : string option;
    remote_retries : int;
    remote_timeout_s : float option;
    namespace : string option;
  }

  let term =
    let verbose =
      let doc = "Print equality-saturation debug output." in
      Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
    in
    let json =
      let doc = "Emit machine-readable JSON where the command supports it." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let trace =
      let doc =
        "Write a Chrome trace-event JSON of the run to $(docv): \
         per-operator spans, per-iteration saturation counters, per-rule \
         hit events and e-graph growth samples. Load the file in \
         chrome://tracing or https://ui.perfetto.dev."
      in
      Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
    in
    let profile =
      let doc =
        "Collect trace events in memory and print a per-operator / \
         per-rule profile summary after the run."
      in
      Arg.(value & flag & info [ "profile" ] ~doc)
    in
    let deadline =
      let doc =
        "Wall-clock budget for the whole check, in seconds. Checked \
         cooperatively; exceeding it yields an inconclusive verdict (exit \
         2), never a hang."
      in
      Arg.(
        value
        & opt (some float) None
        & info [ "deadline" ] ~docv:"SECONDS" ~doc)
    in
    let op_deadline =
      let doc =
        "Wall-clock budget per operator attempt, in seconds (each \
         escalation retry gets a fresh allowance)."
      in
      Arg.(
        value
        & opt (some float) None
        & info [ "op-deadline" ] ~docv:"SECONDS" ~doc)
    in
    let keep_going =
      let doc =
        "Multi-fault localization: do not stop at the first failing \
         operator; bind its outputs to opaque placeholders, skip its \
         dependents, and report every independent fault in one run."
      in
      Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
    in
    let no_retries =
      let doc =
        "Disable the escalation ladder: accept the first inconclusive \
         verdict instead of retrying with scaled budgets."
      in
      Arg.(value & flag & info [ "no-retries" ] ~doc)
    in
    let failpoints =
      let doc =
        "Arm fault-injection failpoints, e.g. \
         $(b,egraph.rebuild=nth:2,symbolic.decide=prob:0.1@7). Grammar: \
         $(i,name=nth:N|every:K|prob:P@SEED|off), comma-separated. The \
         ENTANGLE_FAILPOINTS environment variable is read too; this flag \
         takes precedence per failpoint. Injected faults surface as \
         internal-error verdicts (exit 3)."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "failpoints" ] ~docv:"SPEC" ~doc)
    in
    let cache_dir =
      let doc =
        "Directory of the persistent certificate cache (default:          $(b,\\$ENTANGLE_CACHE_DIR), else $(b,~/.cache/entangle))."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "cache-dir" ] ~docv:"DIR" ~doc)
    in
    let no_cache =
      let doc =
        "Disable the certificate cache: neither look up nor store          per-operator results. Restores the pre-cache behavior exactly."
      in
      Arg.(value & flag & info [ "no-cache" ] ~doc)
    in
    let cache_verify =
      let doc =
        "On every cache hit, run the full search anyway and cross-check          the cached verdict (slow; for cache debugging)."
      in
      Arg.(value & flag & info [ "cache-verify" ] ~doc)
    in
    let cache_max_bytes =
      let doc =
        "Byte budget for the certificate cache: when the store grows \
         past $(docv), least-recently-used entries are evicted until it \
         fits (inclusive ceiling). Overrides \
         $(b,\\$ENTANGLE_CACHE_MAX_BYTES). Unset = unbounded."
      in
      Arg.(
        value
        & opt (some int) None
        & info [ "cache-max-bytes" ] ~docv:"BYTES" ~doc)
    in
    let cache_max_age_s =
      let doc =
        "Age bound for certificate-cache entries, in seconds since last \
         use: older entries are expired on lookup and at sweeps. \
         Overrides $(b,\\$ENTANGLE_CACHE_MAX_AGE_S). Unset = no age \
         bound."
      in
      Arg.(
        value
        & opt (some float) None
        & info [ "cache-max-age-s" ] ~docv:"SECONDS" ~doc)
    in
    let jobs =
      let doc =
        "Check operators on $(docv) OCaml domains. Only operators with \
         no dependency between them and disjoint distributed cones run \
         concurrently, and results merge in topological order, so \
         verdicts, statistics and cache contents are identical to \
         $(b,-j 1) (the default, which runs the exact sequential loop)."
      in
      Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
    in
    let remote =
      let doc =
        "Run the check on the resident $(b,entangle serve) daemon \
         listening on the Unix-domain socket $(docv) instead of in this \
         process. Verdicts, reports, exit codes and statistics are \
         identical to a local run; the daemon keeps the lemma corpus \
         and certificate cache warm across invocations."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "remote" ] ~docv:"SOCKET" ~doc)
    in
    let remote_retries =
      let doc =
        "How many times a $(b,--remote) request is retried after a \
         transient failure (connection refused, daemon busy, I/O \
         timeout), with capped exponential backoff and deterministic \
         jitter between attempts. Non-idempotent requests ($(b,remote \
         clear), $(b,remote shutdown)) are never retried once sent."
      in
      Arg.(value & opt int 2 & info [ "remote-retries" ] ~docv:"N" ~doc)
    in
    let remote_timeout_s =
      let doc =
        "Per-attempt I/O deadline for $(b,--remote) requests, in \
         seconds: bounds the connect, the handshake and every frame \
         read/write. An expired deadline counts as a transient failure \
         for the retry ladder. Unset = wait indefinitely."
      in
      Arg.(
        value
        & opt (some float) None
        & info [ "remote-timeout-s" ] ~docv:"SECONDS" ~doc)
    in
    let namespace =
      let doc =
        "Certificate-cache namespace: checks under different namespaces \
         share a store (and its retention budget) but never observe \
         each other's entries. The empty default is the shared \
         namespace."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "namespace" ] ~docv:"NAME" ~doc)
    in
    let make verbose json trace profile deadline op_deadline keep_going
        no_retries failpoints cache_dir no_cache cache_verify cache_max_bytes
        cache_max_age_s jobs remote remote_retries remote_timeout_s namespace =
      {
        verbose;
        json;
        trace;
        profile;
        deadline;
        op_deadline;
        keep_going;
        no_retries;
        failpoints;
        cache_dir;
        no_cache;
        cache_verify;
        cache_max_bytes;
        cache_max_age_s;
        jobs;
        remote;
        remote_retries;
        remote_timeout_s;
        namespace;
      }
    in
    Term.(
      const make $ verbose $ json $ trace $ profile $ deadline $ op_deadline
      $ keep_going $ no_retries $ failpoints $ cache_dir $ no_cache
      $ cache_verify $ cache_max_bytes $ cache_max_age_s $ jobs $ remote
      $ remote_retries $ remote_timeout_s $ namespace)

  (* Set up the sinks the options ask for, run [f] with the combined
     sink, then finish the trace file and print the profile. The
     Chrome file is closed even when [f] raises, so a crashed run
     still leaves a loadable trace. *)
  let with_sink_armed o f =
    let collector = if o.profile then Some (Trace.Collect.create ()) else None in
    let chrome =
      Option.map
        (fun path ->
          let oc = open_out path in
          (path, oc, Trace.Chrome.create oc))
        o.trace
    in
    let sink =
      Trace.Sink.tee
        (match collector with
        | Some c -> Trace.Collect.sink c
        | None -> Trace.Sink.null)
        (match chrome with
        | Some (_, _, ch) -> Trace.Chrome.sink ch
        | None -> Trace.Sink.null)
    in
    let finally () =
      Option.iter
        (fun (path, oc, ch) ->
          Trace.Chrome.close ch;
          close_out oc;
          Fmt.pr "wrote trace %s (%d events)@." path (Trace.Chrome.event_count ch))
        chrome
    in
    Fun.protect ~finally (fun () ->
        let code = f sink in
        Option.iter
          (fun c ->
            Fmt.pr "@.%a@." Trace.Profile.pp
              (Trace.Profile.of_events (Trace.Collect.events c)))
          collector;
        code)

  let with_sink o f =
    setup_logs o.verbose;
    match
      match o.failpoints with
      | None -> Ok ()
      | Some spec -> Failpoint.activate_spec spec
    with
    | Error e ->
        Fmt.epr "bad --failpoints spec: %s@." e;
        124
    | Ok () -> with_sink_armed o f

  (* The store retention budget the options imply: flags override the
     ENTANGLE_CACHE_MAX_BYTES / ENTANGLE_CACHE_MAX_AGE_S environment. *)
  let budget o =
    let base = Entangle_cache.Store.env_budget () in
    {
      Entangle_cache.Store.max_bytes =
        (match o.cache_max_bytes with
        | Some _ as b -> b
        | None -> base.Entangle_cache.Store.max_bytes);
      max_age_s =
        (match o.cache_max_age_s with
        | Some _ as a -> a
        | None -> base.Entangle_cache.Store.max_age_s);
    }

  (* The checker configuration the options imply, on top of [base].
     The certificate cache is on by default for CLI runs (the library
     default stays off) but is force-disabled when failpoints are
     armed: a warm cache would skip the very searches the injected
     faults are meant to hit. *)
  let config ?(base = Entangle.Config.default) o sink =
    let cache =
      if o.no_cache || o.failpoints <> None then None
      else
        match
          Entangle_cache.Cache.create ?dir:o.cache_dir ~budget:(budget o) ()
        with
        | Ok c -> Some c
        | Error e ->
            Fmt.epr "warning: cannot open certificate cache (%s); running                      uncached@."
              e;
            None
    in
    base
    |> Entangle.Config.with_trace sink
    |> Entangle.Config.with_check_deadline o.deadline
    |> Entangle.Config.with_op_deadline o.op_deadline
    |> Entangle.Config.with_keep_going o.keep_going
    |> Entangle.Config.with_cache cache
    |> Entangle.Config.with_cache_verify o.cache_verify
    |> Entangle.Config.with_cache_namespace
         (Option.value o.namespace ~default:"")
    |> Entangle.Config.with_jobs o.jobs
    |> fun c ->
    if o.no_retries then Entangle.Config.with_escalation [] c else c
end

(* Exit-code convention shared by the checking subcommands (see
   Refine.exit_code): success / refinement failure / inconclusive /
   internal error must be distinguishable by scripts. *)
let verdict_exits =
  Cmd.Exit.info 0 ~doc:"the check succeeded (refinement holds)."
  :: Cmd.Exit.info 1
       ~doc:
         "refinement failure: some operator's output provably has no clean \
          mapping under the lemma corpus."
  :: Cmd.Exit.info 2
       ~doc:
         "inconclusive: a saturation budget or --deadline was exhausted \
          before a verdict; raise the limits or let escalation retry."
  :: Cmd.Exit.info 3
       ~doc:
         "internal checker error (caught and localized; includes injected \
          --failpoints faults and certificate-replay mismatches)."
  :: Cmd.Exit.defaults

(* Exit codes are cache-independent by construction (only definitive
   verdicts are cached, and replay failures fall back to the search);
   $(b,--no-cache) forces the pre-cache behavior when bisecting. *)

let check_instance ?config inst =
  Fmt.pr "Checking %a@." Instance.pp inst;
  match Instance.check ?config inst with
  | Ok success ->
      Fmt.pr "%a@." (Entangle.Report.pp_success inst.Instance.gs) success;
      (match
         Entangle.Certify.replay ~env:inst.Instance.env ~gs:inst.Instance.gs
           ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
           ~output_relation:success.output_relation ()
       with
      | Ok () ->
          Fmt.pr "Certificate replay on concrete data: OK@.";
          0
      | Error e ->
          (* The checker said yes but concrete replay disagrees: an
             internal inconsistency, not a refinement verdict. *)
          Fmt.pr "Certificate replay FAILED: %s@." e;
          3)
  | Error failure ->
      Fmt.pr "%a@." (Entangle.Report.pp_failure inst.Instance.gs) failure;
      Entangle.Refine.exit_code (Error failure)

(* --- remote checking ----------------------------------------------------- *)

module Serve = Entangle_serve

(* The retry policy the shared --remote-retries / --remote-timeout-s
   flags imply; backoff shape and jitter seed stay at the library
   defaults. *)
let retry_of_opts (opts : Output_opts.t) =
  {
    Serve.Client.default_retry with
    Serve.Client.retries = opts.Output_opts.remote_retries;
    timeout_s = opts.Output_opts.remote_timeout_s;
  }

(* Ship one check to the resident daemon: graphs and relation travel
   structurally, the verbatim report comes back with the verdict, exit
   code and statistics a local run would have produced. The call rides
   the retry ladder: transient failures (refused, busy, timeout) redial
   with backoff; checks are idempotent so retrying after a sent request
   is safe too. *)
let remote_reply ~retry ~socket ~options ~gs ~gd ~input_relation =
  Serve.Client.call ~retry ~socket
    (Serve.Protocol.Check
       {
         options;
         gs = Entangle_ir.Serial.graph_to_sexp gs;
         gd = Entangle_ir.Serial.graph_to_sexp gd;
         relation = Entangle.Relation_io.to_sexp input_relation;
       })

let remote_options (opts : Output_opts.t) ~family =
  {
    Serve.Protocol.family;
    namespace = opts.Output_opts.namespace;
    jobs = (if opts.Output_opts.jobs > 1 then Some opts.Output_opts.jobs else None);
    keep_going = opts.Output_opts.keep_going;
  }

(* [handle_success] maps a successful remote verdict to the exit code;
   [verify] replays the returned certificate locally (same as the local
   path), [check-files] just accepts it. *)
let remote_check ~retry ~socket ~options ~gs ~gd ~input_relation
    ~handle_success =
  match remote_reply ~retry ~socket ~options ~gs ~gd ~input_relation with
  | Error e ->
      Fmt.epr "cannot reach daemon on %s: %s (%d attempt%s)@." socket
        (Serve.Client.error_message e) e.Serve.Client.attempts
        (if e.Serve.Client.attempts = 1 then "" else "s");
      124
  | Ok (Serve.Protocol.Error_reply { code; message }) ->
      Fmt.epr "daemon error: %s@." message;
      Serve.Protocol.error_exit_code code
  | Ok (Serve.Protocol.Checked r) ->
      Fmt.pr "%s@." r.Serve.Protocol.report;
      if r.Serve.Protocol.exit_code = 0 then
        handle_success r.Serve.Protocol.output_relation
      else r.Serve.Protocol.exit_code
  | Ok _ ->
      Fmt.epr "unexpected daemon reply@.";
      3

let remote_check_instance opts socket (inst : Instance.t) =
  Fmt.pr "Checking %a@." Instance.pp inst;
  let options =
    remote_options opts
      ~family:
        (Some (Entangle_lemmas.Registry.family_name inst.Instance.family))
  in
  let gs = inst.Instance.gs and gd = inst.Instance.gd in
  let input_relation = inst.Instance.input_relation in
  remote_check ~retry:(retry_of_opts opts) ~socket ~options ~gs ~gd
    ~input_relation
    ~handle_success:(fun output_relation ->
      let replayed =
        match output_relation with
        | None -> Error "daemon reply carried no certificate"
        | Some rel_sexp -> (
            match Entangle.Relation_io.of_sexp ~gs ~gd rel_sexp with
            | Error e -> Error ("unreadable certificate: " ^ e)
            | Ok output_relation ->
                Entangle.Certify.replay ~env:inst.Instance.env ~gs ~gd
                  ~input_relation ~output_relation ())
      in
      match replayed with
      | Ok () ->
          Fmt.pr "Certificate replay on concrete data: OK@.";
          0
      | Error e ->
          Fmt.pr "Certificate replay FAILED: %s@." e;
          3)

(* --- verify ------------------------------------------------------------ *)

let model_arg =
  let doc =
    Fmt.str "Model to verify: one of %a."
      Fmt.(list ~sep:comma string)
      Zoo.names
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let degree_arg =
  Arg.(value & opt int 2 & info [ "d"; "degree" ] ~doc:"Parallelism degree.")

let layers_arg =
  Arg.(value & opt int 1 & info [ "l"; "layers" ] ~doc:"Number of layers.")

let scheduler_arg =
  let sched =
    Arg.enum
      [
        ("backoff", Entangle_egraph.Runner.Backoff);
        ("simple", Entangle_egraph.Runner.Simple);
      ]
  in
  Arg.(
    value
    & opt sched Entangle.Config.default.Entangle.Config.scheduler
    & info [ "scheduler" ]
        ~doc:
          "Saturation rule scheduler: $(b,backoff) (egg-style match-budget \
           bans, the default) or $(b,simple) (every rule every iteration).")

let full_match_arg =
  Arg.(
    value & flag
    & info [ "full-match" ]
        ~doc:
          "Disable incremental e-matching: re-match every rule against \
           every candidate class each iteration instead of only classes \
           modified since the rule's last search.")

let verify_cmd =
  let run opts model degree layers scheduler full_match =
    Output_opts.with_sink opts (fun sink ->
        let config =
          Output_opts.config opts sink
          |> Entangle.Config.with_scheduler scheduler
          |> Entangle.Config.with_incremental_matching (not full_match)
        in
        let inst =
          match String.lowercase_ascii model with
          | "gpt" -> Some (Gpt.build ~layers ~degree ())
          | "llama" | "llama-3" | "llama3" ->
              Some (Llama.build ~layers ~degree ())
          | "qwen2" | "qwen" -> Some (Qwen2.build ~layers ~degree ())
          | "bytedance" | "moe" -> Some (Moe.build ~degree ~layers ())
          | "bytedance-bwd" | "moe-bwd" -> Some (Moe.build_backward ~degree ())
          | "regression" -> Some (Regression.build ~microbatches:degree ())
          | "linear-bwd" -> Some (Train.linear_backward ~degree ())
          | "dp" | "data-parallel" ->
              Some (Train.data_parallel ~replicas:degree ())
          | "pipeline" | "pp" ->
              Some (Train.pipeline ~microbatches:degree ~layers ())
          | _ -> None
        in
        match inst with
        | Some inst -> (
            match opts.Output_opts.remote with
            | Some socket -> remote_check_instance opts socket inst
            | None -> check_instance ~config inst)
        | None ->
            Fmt.epr "unknown model %s; try: %a@." model
              Fmt.(list ~sep:comma string)
              Zoo.names;
            124)
  in
  let info =
    Cmd.info "verify" ~exits:verdict_exits
      ~doc:"Check that a distributed model refines its spec."
  in
  Cmd.v info
    Term.(
      const run $ Output_opts.term $ model_arg $ degree_arg $ layers_arg
      $ scheduler_arg $ full_match_arg)

(* --- localize ----------------------------------------------------------- *)

let bug_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"BUG" ~doc:"Bug id, 1-9.")

let localize_cmd =
  let run opts id =
    Output_opts.with_sink opts (fun sink ->
        let config = Output_opts.config opts sink in
        match Bugs.case id with
        | exception Invalid_argument e ->
            Fmt.epr "%s@." e;
            124
        | case -> (
            Fmt.pr "Bug %d (%s): %s@.@." case.Bugs.id case.Bugs.framework
              case.Bugs.description;
            match Bugs.run ~config case with
            | Bugs.Detected report ->
                Fmt.pr "%s@." report;
                0
            | Bugs.Missed ->
                Fmt.pr "NOT DETECTED: the checker accepted the implementation@.";
                1))
  in
  let info =
    Cmd.info "localize"
      ~doc:"Reproduce and localize one of the 9 case-study bugs."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ bug_arg)

(* --- check-files: verify graphs loaded from disk ------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let file_arg name doc = Arg.(required & opt (some file) None & info [ name ] ~doc)

let check_files_cmd =
  let run opts gs_path gd_path rel_path =
    Output_opts.with_sink opts (fun sink ->
        let config = Output_opts.config opts sink in
        let ( let* ) = Result.bind in
        let outcome =
          let* gs = Entangle_ir.Serial.graph_of_string (read_file gs_path) in
          let* gd = Entangle_ir.Serial.graph_of_string (read_file gd_path) in
          let* input_relation =
            Entangle.Relation_io.of_string ~gs ~gd (read_file rel_path)
          in
          Ok (gs, gd, input_relation)
        in
        match outcome with
        | Error e ->
            Fmt.epr "error loading inputs: %s@." e;
            124
        | Ok (gs, gd, input_relation) -> (
            match opts.Output_opts.remote with
            | Some socket ->
                (* No family: the full corpus, same as the local path. *)
                remote_check ~retry:(retry_of_opts opts) ~socket
                  ~options:(remote_options opts ~family:None)
                  ~gs ~gd ~input_relation
                  ~handle_success:(fun _ -> 0)
            | None -> (
                match
                  Entangle.Refine.check ~config ~gs ~gd ~input_relation ()
                with
                | Ok success ->
                    Fmt.pr "%a@." (Entangle.Report.pp_success gs) success;
                    0
                | Error failure ->
                    Fmt.pr "%a@." (Entangle.Report.pp_failure gs) failure;
                    Entangle.Refine.exit_code (Error failure))))
  in
  let info =
    Cmd.info "check-files" ~exits:verdict_exits
      ~doc:
        "Check refinement between graphs loaded from .ent files (see the \
         format in lib/ir/serial.mli)."
  in
  Cmd.v info
    Term.(
      const run $ Output_opts.term
      $ file_arg "gs" "Sequential graph file."
      $ file_arg "gd" "Distributed graph file."
      $ file_arg "rel" "Input relation file.")

(* --- export ------------------------------------------------------------- *)

let export_cmd =
  let run opts model dir dot =
    Output_opts.with_sink opts (fun _sink ->
        match Zoo.by_name model with
        | None ->
            Fmt.epr "unknown model %s@." model;
            124
        | Some inst ->
            let write name contents =
              let path = Filename.concat dir name in
              let oc = open_out path in
              output_string oc contents;
              output_string oc "\n";
              close_out oc;
              Fmt.pr "wrote %s@." path
            in
            write (model ^ "-seq.ent")
              (Entangle_ir.Serial.graph_to_string inst.Instance.gs);
            write (model ^ "-dist.ent")
              (Entangle_ir.Serial.graph_to_string inst.Instance.gd);
            write (model ^ "-rel.ent")
              (Entangle.Relation_io.to_string inst.Instance.input_relation);
            if dot then begin
              write (model ^ "-seq.dot")
                (Entangle_ir.Dot.to_dot inst.Instance.gs);
              write (model ^ "-dist.dot")
                (Entangle_ir.Dot.to_dot inst.Instance.gd)
            end;
            0)
  in
  let info =
    Cmd.info "export"
      ~doc:"Write a built-in model's graphs and relation to .ent files."
  in
  Cmd.v info
    Term.(
      const run $ Output_opts.term $ model_arg
      $ Arg.(value & opt dir "." & info [ "o"; "output" ] ~doc:"Output directory.")
      $ Arg.(value & flag & info [ "dot" ] ~doc:"Also write Graphviz .dot renderings."))

(* --- list / lemmas ------------------------------------------------------ *)

let list_cmd =
  let run opts =
    Output_opts.with_sink opts (fun _sink ->
        Fmt.pr "Models:@.";
        List.iter (fun n -> Fmt.pr "  %s@." n) Zoo.names;
        Fmt.pr "@.Bugs:@.";
        List.iter
          (fun c ->
            Fmt.pr "  %d: [%s] %s@." c.Bugs.id c.Bugs.framework
              c.Bugs.description)
          (Bugs.all ());
        0)
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in models and bug cases.")
    Term.(const run $ Output_opts.term)

let lemmas_cmd =
  let run opts =
    Output_opts.with_sink opts (fun _sink ->
        let all = Entangle_lemmas.Registry.all in
        Fmt.pr "%d lemmas, %d rules:@." (List.length all)
          (List.length (Entangle_lemmas.Lemma.rules all));
        List.iteri
          (fun i l -> Fmt.pr "  %2d %a@." i Entangle_lemmas.Lemma.pp l)
          all;
        0)
  in
  Cmd.v (Cmd.info "lemmas" ~doc:"Show the lemma corpus.")
    Term.(const run $ Output_opts.term)

(* --- lint --------------------------------------------------------------- *)

let lint_cmd =
  let module A = Entangle_analysis in
  let run opts seed verify_lemmas rank_bound waivers_file =
    Output_opts.with_sink opts (fun sink ->
        let named =
          List.concat_map
            (fun name ->
              match Zoo.by_name name with
              | None -> []
              | Some inst ->
                  [
                    (name ^ "/seq", inst.Instance.gs);
                    (name ^ "/dist", inst.Instance.gd);
                  ])
            Zoo.names
        in
        match
          match waivers_file with
          | None -> Ok []
          | Some path -> A.Lint.parse_waivers (read_file path)
        with
        | Error e ->
            Fmt.epr "bad --waivers file: %s@." e;
            124
        | Ok waivers ->
            let graph_diags = A.Lint.graphs named in
            let corpus_diags, stats = A.Lint.corpus ~seed () in
            let verify =
              if not verify_lemmas then None
              else
                let config =
                  {
                    A.Lemma_verify.default_config with
                    rank_bound =
                      Option.value rank_bound
                        ~default:A.Lemma_verify.default_config.rank_bound;
                  }
                in
                let span name f =
                  Trace.Sink.span sink ~cat:"lemma-verify" name f
                in
                let verify_diags, report =
                  Trace.Sink.span sink ~cat:"lemma-verify" "corpus" (fun () ->
                      A.Lint.verify_corpus ~config ~span ())
                in
                let cover_diags, cover =
                  A.Lint.coverage ~report ~stats ~waivers
                in
                Some (verify_diags @ cover_diags, report, cover)
            in
            let diags =
              graph_diags @ corpus_diags
              @ match verify with Some (ds, _, _) -> ds | None -> []
            in
            if opts.Output_opts.json then begin
              let module J = Trace.Jsonw in
              print_endline
                (J.envelope ~name:"lint" ~version:1
                   [
                     ("diagnostics", J.Raw (A.Diagnostic.report_to_json diags));
                     ( "coverage",
                       match verify with
                       | Some (_, report, cover) ->
                           J.Raw
                             (A.Lint.coverage_to_json
                                (report.A.Lemma_verify.rank_bound, cover))
                       | None -> J.Null );
                   ])
            end
            else begin
              Fmt.pr "Linted %d graphs; audited %d lemmas (%d exercised, %d \
                      differential comparisons).@."
                (List.length named) stats.A.Lemma_check.lemmas_audited
                stats.A.Lemma_check.lemmas_exercised
                stats.A.Lemma_check.comparisons;
              if stats.A.Lemma_check.unexercised <> [] then
                Fmt.pr "Unexercised lemmas: %a@."
                  Fmt.(list ~sep:comma string)
                  stats.A.Lemma_check.unexercised;
              Option.iter
                (fun (_, report, cover) ->
                  Fmt.pr "%a" A.Lint.pp_coverage
                    (report.A.Lemma_verify.rank_bound, cover))
                verify;
              Fmt.pr "%a@." A.Diagnostic.pp_report diags
            end;
            A.Lint.exit_code diags)
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Random seed for the differential lemma audit.")
  in
  let verify_lemmas =
    Arg.(
      value & flag
      & info [ "verify-lemmas" ]
          ~doc:
            "Run the symbolic bounded verifier over the lemma corpus and \
             gate on coverage: every lemma must be symbolically verified, \
             numerically exercised, or waived (LEMMA203 otherwise).")
  in
  let rank_bound =
    Arg.(
      value
      & opt (some int) None
      & info [ "rank-bound" ] ~docv:"N"
          ~doc:
            "Maximum tensor rank the symbolic verifier enumerates (with \
             $(b,--verify-lemmas)).")
  in
  let waivers =
    Arg.(
      value
      & opt (some file) None
      & info [ "waivers" ] ~docv:"FILE"
          ~doc:
            "Waiver list for the coverage gate: one \"lemma-name: reason\" \
             per line, '#' comments.")
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "Statically analyze the built-in model graphs and the lemma corpus: \
         graph well-formedness, lemma structural checks, a differential \
         soundness audit, and (with $(b,--verify-lemmas)) symbolic bounded \
         verification of every rewrite rule. Exits non-zero when any \
         error-severity diagnostic is found."
  in
  Cmd.v info
    Term.(
      const run $ Output_opts.term $ seed $ verify_lemmas $ rank_bound
      $ waivers)

(* --- trace-check: validate an emitted trace ------------------------------ *)

let trace_check_cmd =
  let run opts file =
    Output_opts.with_sink opts (fun _sink ->
        match Trace.Chrome.validate (read_file file) with
        | Ok n ->
            Fmt.pr "%s: valid Chrome trace (%d events)@." file n;
            0
        | Error e ->
            Fmt.epr "%s: INVALID trace: %s@." file e;
            1)
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file written by --trace.")
  in
  let info =
    Cmd.info "trace-check"
      ~doc:
        "Validate a --trace output file: it must parse as Chrome trace-event \
         JSON with balanced spans and contain every required event phase and \
         category (the $(b,dune build @trace-smoke) gate)."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ file)

(* --- cache: inspect and maintain the certificate store ------------------ *)

(* Shared by [cache stats --json] and [remote stats --json]: local and
   daemon-side stores must render identically. *)
let cache_stats_json ~dir ~entries ~bytes ~shards ~quarantined ~max_bytes
    ~max_age_s ~evicted_entries ~evicted_bytes ~expired_entries =
  let module J = Trace.Jsonw in
  J.envelope ~name:"cache-stats" ~version:1
    [
      ("dir", J.Str dir);
      ("entries", J.Int entries);
      ("bytes", J.Int bytes);
      ("shards", J.Int shards);
      ("quarantined", J.Int quarantined);
      ("max_bytes", match max_bytes with Some b -> J.Int b | None -> J.Null);
      ("max_age_s", match max_age_s with Some a -> J.Float a | None -> J.Null);
      ("evicted_entries", J.Int evicted_entries);
      ("evicted_bytes", J.Int evicted_bytes);
      ("expired_entries", J.Int expired_entries);
    ]

let print_cache_stats ~json ~dir ~entries ~bytes ~shards ~quarantined
    ~max_bytes ~max_age_s ~evicted_entries ~evicted_bytes ~expired_entries =
  if json then
    print_endline
      (cache_stats_json ~dir ~entries ~bytes ~shards ~quarantined ~max_bytes
         ~max_age_s ~evicted_entries ~evicted_bytes ~expired_entries)
  else begin
    Fmt.pr "cache %s: %d entries (%d bytes, %d shards), %d quarantined@." dir
      entries bytes shards quarantined;
    Fmt.pr "  budget: %s, age bound %s@."
      (match max_bytes with
      | Some b -> Fmt.str "%d bytes" b
      | None -> "unbounded")
      (match max_age_s with
      | Some a -> Fmt.str "%gs" a
      | None -> "none");
    Fmt.pr "  retention: %d evicted (%d bytes), %d expired@." evicted_entries
      evicted_bytes expired_entries
  end

let cache_cmd =
  let module C = Entangle_cache.Cache in
  let module S = Entangle_cache.Store in
  let run opts action file out gc =
    Output_opts.with_sink opts (fun _sink ->
        match
          C.create ?dir:opts.Output_opts.cache_dir
            ~budget:(Output_opts.budget opts) ()
        with
        | Error e ->
            Fmt.epr "cannot open certificate cache: %s@." e;
            124
        | Ok cache ->
            let code =
              match action with
              | `Export ->
                  let text, count = C.export_archive cache in
                  (match out with
                  | None -> print_string text
                  | Some path ->
                      let oc = open_out_bin path in
                      output_string oc text;
                      close_out oc;
                      Fmt.pr "wrote %s@." path);
                  Fmt.epr "cache %s: exported %d entries@." (C.dir cache) count;
                  0
              | `Import -> (
                  match file with
                  | None ->
                      Fmt.epr "cache import: missing archive FILE argument@.";
                      124
                  | Some path -> (
                      match C.import_archive cache (read_file path) with
                      | Ok (imported, rejected) ->
                          Fmt.pr
                            "cache %s: imported %d entries, rejected %d@."
                            (C.dir cache) imported rejected;
                          if rejected = 0 then 0 else 1
                      | Error e ->
                          Fmt.epr "cache import: %s@." e;
                          124))
              | `Stats ->
                  let s = C.stats cache in
                  print_cache_stats ~json:opts.Output_opts.json
                    ~dir:(C.dir cache) ~entries:s.S.entries ~bytes:s.S.bytes
                    ~shards:s.S.shards ~quarantined:s.S.quarantined
                    ~max_bytes:s.S.max_bytes ~max_age_s:s.S.max_age_s
                    ~evicted_entries:s.S.evicted_entries
                    ~evicted_bytes:s.S.evicted_bytes
                    ~expired_entries:s.S.expired_entries;
                  0
              | `Clear ->
                  let removed = C.clear cache in
                  Fmt.pr "cache %s: removed %d entries@." (C.dir cache) removed;
                  0
              | `Verify ->
                  let v = C.verify cache in
                  Fmt.pr
                    "cache %s: checked %d entries, %d ok, %d invalid \
                     (quarantined)@."
                    (C.dir cache) v.S.checked v.S.ok v.S.invalid;
                  if v.S.invalid = 0 then 0 else 1
            in
            if gc then begin
              let r = C.gc cache in
              Fmt.pr
                "gc %s: expired %d, evicted %d (%d bytes freed); %d entries \
                 (%d bytes) remain@."
                (C.dir cache) r.S.expired r.S.evicted r.S.freed_bytes
                r.S.remaining_entries r.S.remaining_bytes
            end;
            code)
  in
  let action =
    let actions =
      [
        ("stats", `Stats);
        ("clear", `Clear);
        ("verify", `Verify);
        ("export", `Export);
        ("import", `Import);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,stats) prints entry counts, sizes and retention activity; \
             $(b,clear) removes every entry; $(b,verify) re-validates every \
             entry's payload, quarantining damage (exits 1 if any entry was \
             invalid); $(b,export) dumps every valid entry as a portable \
             archive (to --out or stdout) — quarantined, version-skewed and \
             corrupt entries never export; $(b,import) $(i,FILE) loads an \
             archive, structurally validating each payload (exits 1 if any \
             entry was rejected).")
  in
  let file =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Archive file for $(b,import).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where $(b,export) writes the archive (default stdout).")
  in
  let gc =
    Arg.(
      value & flag
      & info [ "gc" ]
          ~doc:
            "After the action, compact the store in one shot: drop entries \
             older than the age bound, then evict least-recently-used \
             entries until the byte budget (--cache-max-bytes or \
             $(b,\\$ENTANGLE_CACHE_MAX_BYTES)) is met, and clean up stale \
             temporary files. With no budget configured only the cleanup \
             runs. Typically $(b,entangle cache verify --gc).")
  in
  let info =
    Cmd.info "cache"
      ~doc:
        "Inspect or maintain the persistent certificate cache (see \
         --cache-dir; checking commands populate it automatically unless \
         --no-cache is given). Retention defaults: no byte budget and no \
         age bound — entries live until $(b,clear), $(b,--gc), or a budget \
         set via flags or environment evicts them, least-recently-used \
         first."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ action $ file $ out $ gc)

(* --- cert: portable tamper-evident certificate bundles ------------------- *)

module CE = Entangle_certexport

let write_text ~out text =
  match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      Fmt.pr "wrote %s@." path

let cert_error_json (e : CE.Cert_error.t) =
  let module J = Trace.Jsonw in
  J.envelope ~name:"cert-verify" ~version:1
    [
      ("accepted", J.Bool false);
      ("code", J.Str (CE.Cert_error.code_string e.CE.Cert_error.code));
      ("mnemonic", J.Str (CE.Cert_error.mnemonic e.CE.Cert_error.code));
      ("detail", J.Str e.CE.Cert_error.detail);
    ]

let cert_report_json (r : CE.Verify.report) =
  let module J = Trace.Jsonw in
  J.envelope ~name:"cert-verify" ~version:1
    [
      ("accepted", J.Bool true);
      ("id", J.Str r.CE.Verify.id);
      ("operators", J.Int r.CE.Verify.operators);
      ("outputs_checked", J.Int r.CE.Verify.outputs_checked);
      ("exprs_replayed", J.Int r.CE.Verify.exprs_replayed);
      ("tol", J.Float r.CE.Verify.tol);
      ("seed", J.Int r.CE.Verify.seed);
    ]

let print_cert_report ~json (r : CE.Verify.report) =
  if json then print_endline (cert_report_json r)
  else
    Fmt.pr
      "certificate %s: VERIFIED (%d operators, %d outputs, %d expressions \
       replayed, tol %g, seed %d)@."
      r.CE.Verify.id r.CE.Verify.operators r.CE.Verify.outputs_checked
      r.CE.Verify.exprs_replayed r.CE.Verify.tol r.CE.Verify.seed

let print_cert_error ~json (e : CE.Cert_error.t) =
  if json then print_endline (cert_error_json e)
  else Fmt.pr "certificate REJECTED: %a@." CE.Cert_error.pp e

(* [cert export]: run the check (locally or on the daemon via
   cert-fetch) and write the portable bundle. Either way the bundle on
   disk has passed the minimal verifier once: the local path re-verifies
   its own export as a self-check, the remote path re-verifies because
   the daemon is outside the trust boundary. *)
let cert_export_cmd =
  let run opts model out =
    Output_opts.with_sink opts (fun sink ->
        match Zoo.by_name model with
        | None ->
            Fmt.epr "unknown model %s; try: %a@." model
              Fmt.(list ~sep:comma string)
              Zoo.names;
            124
        | Some inst -> (
            let finish bundle_text =
              match CE.Verify.check_string bundle_text with
              | Error e ->
                  Fmt.epr "exported bundle failed re-verification: %a@."
                    CE.Cert_error.pp e;
                  3
              | Ok report ->
                  write_text ~out bundle_text;
                  Fmt.epr "certificate %s: verified before writing@."
                    report.CE.Verify.id;
                  0
            in
            match opts.Output_opts.remote with
            | Some socket -> (
                let module Cl = Serve.Client in
                let module P = Serve.Protocol in
                let req =
                  P.Cert_fetch
                    {
                      options =
                        remote_options opts
                          ~family:
                            (Some
                               (Entangle_lemmas.Registry.family_name
                                  inst.Instance.family));
                      gs = Entangle_ir.Serial.graph_to_sexp inst.Instance.gs;
                      gd = Entangle_ir.Serial.graph_to_sexp inst.Instance.gd;
                      relation =
                        Entangle.Relation_io.to_sexp
                          inst.Instance.input_relation;
                      env =
                        Entangle.Cert_export.env_bindings inst.Instance.env;
                    }
                in
                match Cl.call ~retry:(retry_of_opts opts) ~socket req with
                | Error e ->
                    Fmt.epr "cannot reach daemon on %s: %s@." socket
                      (Cl.error_message e);
                    124
                | Ok (P.Error_reply { code; message }) ->
                    Fmt.epr "daemon error: %s@." message;
                    P.error_exit_code code
                | Ok (P.Checked r) ->
                    (* the check ran but did not refine: no bundle *)
                    Fmt.pr "%s@." r.P.report;
                    r.P.exit_code
                | Ok (P.Cert_bundle { bundle }) -> finish bundle
                | Ok _ ->
                    Fmt.epr "unexpected daemon reply@.";
                    3)
            | None -> (
                let config = Output_opts.config opts sink in
                match Instance.check ~config inst with
                | Error failure ->
                    Fmt.pr "%a@."
                      (Entangle.Report.pp_failure inst.Instance.gs)
                      failure;
                    Entangle.Refine.exit_code (Error failure)
                | Ok success -> (
                    match
                      Entangle.Cert_export.bundle ~producer:"entangle-cli"
                        ~gs:inst.Instance.gs ~gd:inst.Instance.gd
                        ~env:inst.Instance.env
                        ~input_relation:inst.Instance.input_relation success
                    with
                    | Error e ->
                        Fmt.epr "cannot export certificate: %s@." e;
                        3
                    | Ok b -> finish (CE.Bundle.to_string b)))))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the bundle (default stdout).")
  in
  let info =
    Cmd.info "export" ~exits:verdict_exits
      ~doc:
        "Check a built-in model and write its portable certificate bundle. \
         With $(b,--remote) the daemon runs the check ($(b,cert-fetch)) and \
         the bundle is re-verified locally with the minimal verifier before \
         it is written — the daemon is outside the trust boundary."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ model_arg $ out)

let cert_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BUNDLE" ~doc:"Certificate bundle file.")

let cert_verify_cmd =
  let run opts file =
    Output_opts.with_sink opts (fun _sink ->
        let text = read_file file in
        match opts.Output_opts.remote with
        | None -> (
            match CE.Verify.check_string text with
            | Ok report ->
                print_cert_report ~json:opts.Output_opts.json report;
                0
            | Error e ->
                print_cert_error ~json:opts.Output_opts.json e;
                1)
        | Some socket -> (
            let module Cl = Serve.Client in
            let module P = Serve.Protocol in
            match
              Cl.call ~retry:(retry_of_opts opts) ~socket
                (P.Cert_push { bundle = text })
            with
            | Error e ->
                Fmt.epr "cannot reach daemon on %s: %s@." socket
                  (Cl.error_message e);
                124
            | Ok (P.Error_reply { code; message }) ->
                Fmt.epr "daemon error: %s@." message;
                P.error_exit_code code
            | Ok (P.Cert_verdict_reply v) ->
                let module J = Trace.Jsonw in
                if opts.Output_opts.json then
                  print_endline
                    (J.envelope ~name:"cert-verify" ~version:1
                       [
                         ("accepted", J.Bool v.P.accepted);
                         ( "id",
                           match v.P.cert_id with
                           | Some i -> J.Str i
                           | None -> J.Null );
                         ( "code",
                           match v.P.cert_code with
                           | Some c -> J.Str c
                           | None -> J.Null );
                         ("detail", J.Str v.P.cert_detail);
                       ])
                else if v.P.accepted then
                  Fmt.pr "daemon accepted certificate%a: %s@."
                    Fmt.(option (fmt " %s"))
                    v.P.cert_id v.P.cert_detail
                else
                  Fmt.pr "daemon REJECTED certificate (%s): %s@."
                    (Option.value v.P.cert_code ~default:"?")
                    v.P.cert_detail;
                if v.P.accepted then 0 else 1
            | Ok _ ->
                Fmt.epr "unexpected daemon reply@.";
                3))
  in
  let info =
    Cmd.info "verify"
      ~doc:
        "Verify a certificate bundle with the independent minimal verifier \
         (replay, cleanliness and shape inference only — no e-graph). With \
         $(b,--remote) the bundle is pushed to the daemon ($(b,cert-push)) \
         and its verdict reported. Exits 0 when accepted, 1 with the \
         structured $(b,CERT)$(i,nnn) code when rejected."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ cert_file_arg)

let cert_inspect_cmd =
  let run opts file =
    Output_opts.with_sink opts (fun _sink ->
        match CE.Bundle.of_string (read_file file) with
        | Error e ->
            print_cert_error ~json:opts.Output_opts.json e;
            1
        | Ok b ->
            let stmt = CE.Bundle.statement b in
            if opts.Output_opts.json then begin
              let module J = Trace.Jsonw in
              print_endline
                (J.envelope ~name:"cert-inspect" ~version:1
                   [
                     ("id", J.Str (CE.Bundle.id b));
                     ("schema", J.Int CE.Bundle.schema);
                     ("producer", J.Str b.CE.Bundle.producer);
                     ( "statement",
                       J.Obj
                         (List.map
                            (fun (k, v) -> (k, J.Str v))
                            (CE.Bundle.statement_fields stmt)) );
                     ("env", J.Int (List.length b.CE.Bundle.env));
                     ("inputs", J.Int (List.length b.CE.Bundle.inputs));
                     ("outputs", J.Int (List.length b.CE.Bundle.outputs));
                     ("operators", J.Int (List.length b.CE.Bundle.operators));
                   ])
            end
            else begin
              Fmt.pr "bundle %s (schema %d, producer %s)@." (CE.Bundle.id b)
                CE.Bundle.schema b.CE.Bundle.producer;
              Fmt.pr "  statement:@.";
              List.iter
                (fun (k, v) -> Fmt.pr "    %-9s %s@." k v)
                (CE.Bundle.statement_fields stmt);
              Fmt.pr
                "  payload: %d env bindings, %d inputs, %d outputs, %d \
                 operator entries@."
                (List.length b.CE.Bundle.env)
                (List.length b.CE.Bundle.inputs)
                (List.length b.CE.Bundle.outputs)
                (List.length b.CE.Bundle.operators)
            end;
            0)
  in
  let info =
    Cmd.info "inspect"
      ~doc:
        "Parse and integrity-check a bundle (framing, version, section \
         digests, statement binding) and print its manifest without \
         semantic verification. Exits 1 with the $(b,CERT)$(i,nnn) code on \
         a damaged bundle."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ cert_file_arg)

let cert_cmd =
  let info =
    Cmd.info "cert"
      ~doc:
        "Portable tamper-evident certificate bundles: export a checked \
         model's certificate, verify a bundle with the independent minimal \
         verifier, inspect a bundle's manifest. See DESIGN.md for the \
         bundle grammar and the $(b,CERT) error taxonomy."
  in
  Cmd.group info [ cert_export_cmd; cert_verify_cmd; cert_inspect_cmd ]

(* --- serve / remote: the resident checker service ------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"SOCKET"
        ~doc:"Path of the daemon's Unix-domain socket.")

let serve_cmd =
  let run opts socket name max_connections max_clients io_timeout_s
      idle_timeout_s request_deadline_s drain_timeout_s =
    Output_opts.with_sink opts (fun sink ->
        let config = Output_opts.config opts sink in
        match
          Serve.Server.create ~name ~config ?max_connections ~max_clients
            ~io_timeout_s ?idle_timeout_s ?request_deadline_s ~drain_timeout_s
            ~socket ()
        with
        | Error e ->
            Fmt.epr "%s@." (Serve.Server.error_message e);
            124
        | Ok server ->
            Fmt.pr "entangle serve: listening on %s (protocol %d)@." socket
              Serve.Protocol.protocol_version;
            Serve.Server.run ~signals:true server;
            let s = Serve.Server.stats server in
            Fmt.pr
              "entangle serve: done after %d requests (%d connections, %d \
               rejected busy, %d timed out)@."
              s.Serve.Protocol.served s.Serve.Protocol.accepted
              s.Serve.Protocol.rejected_busy s.Serve.Protocol.timed_out;
            0)
  in
  let name_arg =
    Arg.(
      value
      & opt string "entangle-serve"
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Server identity echoed in the handshake and $(b,describe).")
  in
  let max_connections =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Exit after serving $(docv) connections (mainly for tests; \
             default: serve until $(b,remote shutdown)).")
  in
  let max_clients =
    Arg.(
      value & opt int 64
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Concurrent-connection admission limit: a client beyond the \
             $(docv)th is answered with a structured, retryable $(b,busy) \
             frame and disconnected.")
  in
  let io_timeout_s =
    Arg.(
      value & opt float 30.
      & info [ "io-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Per-frame I/O deadline: bounds reading one request frame once \
             its first byte arrived, and writing one reply. Slow or stalled \
             peers cost one timeout, never a wedged handler.")
  in
  let idle_timeout_s =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Disconnect a client that sends no request for $(docv) seconds \
             (default: keep idle connections open indefinitely).")
  in
  let request_deadline_s =
    Arg.(
      value
      & opt (some float) None
      & info [ "request-deadline-s" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per request, folded into the checker's \
             cooperative deadline: an over-budget check returns an \
             inconclusive verdict (a client-supplied deadline can only \
             tighten this).")
  in
  let drain_timeout_s =
    Arg.(
      value & opt float 5.
      & info [ "drain-timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "On shutdown (SIGTERM, SIGINT or $(b,remote shutdown)), how \
             long in-flight requests get to finish before the daemon stops \
             waiting for their threads.")
  in
  let info =
    Cmd.info "serve" ~exits:Cmd.Exit.defaults
      ~doc:
        "Run the resident checker daemon: keep the lemma corpus, \
         configuration and certificate cache warm in one process and answer \
         checks over a Unix-domain socket (see $(b,--remote) on $(b,verify) \
         and $(b,check-files), and the $(b,remote) command). Each connection \
         gets its own handler thread up to $(b,--max-clients); SIGTERM and \
         SIGINT drain gracefully. Remote checks return the same verdicts, \
         reports, exit codes and statistics as local runs. Cache retention \
         flags (--cache-max-bytes, --cache-max-age-s) apply to the daemon's \
         store."
  in
  Cmd.v info
    Term.(
      const run $ Output_opts.term $ socket_arg $ name_arg $ max_connections
      $ max_clients $ io_timeout_s $ idle_timeout_s $ request_deadline_s
      $ drain_timeout_s)

(* [remote stats]: the daemon's live connection counters, plus — when
   it runs cached — the cache statistics in the exact shape of
   [cache stats --json], nested under ["cache"]. *)
let remote_stats_json ~(server : Serve.Protocol.server_stats) ~cache =
  let module J = Trace.Jsonw in
  let module P = Serve.Protocol in
  J.envelope ~name:"remote-stats" ~version:1
    [
      ( "server",
        J.Obj
          [
            ("accepted", J.Int server.P.accepted);
            ("active", J.Int server.P.active);
            ("served", J.Int server.P.served);
            ("rejected_busy", J.Int server.P.rejected_busy);
            ("timed_out", J.Int server.P.timed_out);
            ("drained", J.Int server.P.drained);
            ("accept_failures", J.Int server.P.accept_failures);
            ("max_clients", J.Int server.P.max_clients);
          ] );
      ( "cache",
        match cache with
        | None -> J.Null
        | Some (r : P.cache_stats_reply) ->
            J.Raw
              (cache_stats_json ~dir:r.P.dir ~entries:r.P.entries
                 ~bytes:r.P.bytes ~shards:r.P.shards
                 ~quarantined:r.P.quarantined ~max_bytes:r.P.max_bytes
                 ~max_age_s:r.P.max_age_s ~evicted_entries:r.P.evicted_entries
                 ~evicted_bytes:r.P.evicted_bytes
                 ~expired_entries:r.P.expired_entries) );
    ]

let remote_cmd =
  let module Cl = Serve.Client in
  let module P = Serve.Protocol in
  let run opts socket action =
    Output_opts.with_sink opts (fun _sink ->
        (* Every action is one dialed request riding the retry ladder;
           the ladder itself refuses to resend the non-idempotent ones
           (clear, shutdown) once the request frame is out. *)
        let call req = Cl.call ~retry:(retry_of_opts opts) ~socket req in
        let transport (e : Cl.error) =
          Fmt.epr "cannot reach daemon on %s: %s (%d attempt%s)@." socket
            (Cl.error_message e) e.Cl.attempts
            (if e.Cl.attempts = 1 then "" else "s");
          124
        in
        let daemon_error code message =
          Fmt.epr "daemon error: %s@." message;
          P.error_exit_code code
        in
        let unexpected () =
          Fmt.epr "unexpected daemon reply@.";
          3
        in
        match action with
        | `Ping -> (
            match call P.Ping with
            | Ok P.Pong ->
                Fmt.pr "pong@.";
                0
            | Ok (P.Error_reply { code; message }) -> daemon_error code message
            | Ok _ -> unexpected ()
            | Error e -> transport e)
        | `Describe -> (
            match call P.Describe with
            | Ok (P.Described json) ->
                print_endline json;
                0
            | Ok (P.Error_reply { code; message }) -> daemon_error code message
            | Ok _ -> unexpected ()
            | Error e -> transport e)
        | `Shutdown -> (
            match call P.Shutdown with
            | Ok P.Bye ->
                Fmt.pr "daemon shut down@.";
                0
            | Ok (P.Error_reply { code; message }) -> daemon_error code message
            | Ok _ -> unexpected ()
            | Error e -> transport e)
        | `Stats -> (
            match call P.Server_stats with
            | Error e -> transport e
            | Ok (P.Error_reply { code; message }) -> daemon_error code message
            | Ok (P.Server_stats_reply s) ->
                let cache =
                  match call P.Cache_stats with
                  | Ok (P.Cache_stats_reply r) -> Some r
                  | Ok _ | Error _ -> None
                in
                if opts.Output_opts.json then
                  print_endline (remote_stats_json ~server:s ~cache)
                else begin
                  Fmt.pr
                    "server: %d connections accepted (%d active), %d requests \
                     served@."
                    s.P.accepted s.P.active s.P.served;
                  Fmt.pr
                    "  %d rejected busy (limit %d), %d timed out, %d drained, \
                     %d accept failures@."
                    s.P.rejected_busy s.P.max_clients s.P.timed_out s.P.drained
                    s.P.accept_failures;
                  match cache with
                  | Some r ->
                      print_cache_stats ~json:false ~dir:r.P.dir
                        ~entries:r.P.entries ~bytes:r.P.bytes ~shards:r.P.shards
                        ~quarantined:r.P.quarantined ~max_bytes:r.P.max_bytes
                        ~max_age_s:r.P.max_age_s
                        ~evicted_entries:r.P.evicted_entries
                        ~evicted_bytes:r.P.evicted_bytes
                        ~expired_entries:r.P.expired_entries
                  | None -> Fmt.pr "cache: none (daemon runs uncached)@."
                end;
                0
            | Ok _ -> unexpected ())
        | `Clear -> (
            match call P.Cache_clear with
            | Ok (P.Cache_cleared n) ->
                Fmt.pr "daemon cache: removed %d entries@." n;
                0
            | Ok (P.Error_reply { code; message }) -> daemon_error code message
            | Ok _ -> unexpected ()
            | Error e -> transport e))
  in
  let action =
    let actions =
      [
        ("ping", `Ping);
        ("stats", `Stats);
        ("clear", `Clear);
        ("describe", `Describe);
        ("shutdown", `Shutdown);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,ping) checks liveness; $(b,stats) prints the daemon's \
             connection counters (accepted, rejected-busy, timed-out, \
             drained) and its cache statistics (same shape as $(b,cache \
             stats)); $(b,clear) empties the daemon's cache; $(b,describe) \
             prints the protocol introspection document; $(b,shutdown) asks \
             the daemon to exit.")
  in
  let info =
    Cmd.info "remote"
      ~doc:
        "Talk to a running $(b,entangle serve) daemon: liveness, cache \
         inspection and maintenance, protocol introspection, shutdown."
  in
  Cmd.v info Term.(const run $ Output_opts.term $ socket_arg $ action)

let main =
  let info =
    Cmd.info "entangle" ~version:"1.0.0"
      ~doc:"Static refinement checking for distributed ML models."
  in
  Cmd.group info
    [
      verify_cmd;
      check_files_cmd;
      export_cmd;
      localize_cmd;
      list_cmd;
      lemmas_cmd;
      lint_cmd;
      trace_check_cmd;
      cache_cmd;
      cert_cmd;
      serve_cmd;
      remote_cmd;
    ]

let () = exit (Cmd.eval' main)
